package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/datasets"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
	"github.com/cyclerank/cyclerank-go/internal/task"
)

// bipprBody is the reference query both the saturated and the pristine
// server run; the admitted result must be bit-identical across them.
const bipprBody = `{"tasks": [{"dataset": "complete-50", "algorithm": "bippr-pair",
	"params": {"source": "0", "target": "1", "walks": 256}}]}`

// TestServerShedsUnderSaturation drives the serving tier 4x over
// capacity: one admitted blocker holds the single interactive slot
// while a concurrent flood must be fast-rejected — every rejection a
// 429 with Retry-After, zero graph loads spent on the reject path,
// counters reconciling exactly with the harness's own tallies — and
// after the load passes, an admitted query returns results
// bit-identical to an unloaded server's.
func TestServerShedsUnderSaturation(t *testing.T) {
	store, err := datastore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := datasets.BuiltinCatalogSubset("complete-50")
	if err != nil {
		t.Fatal(err)
	}
	// A gate-blocking algorithm pins the admitted task in flight for as
	// long as the flood needs; the builtins stay available for the
	// bit-identical check afterwards.
	reg := algo.NewBuiltinRegistry()
	gate := make(chan struct{})
	reg.Register(algo.Func{
		AlgoName: "block",
		AlgoDesc: "holds its executor until released",
		RunFunc: func(ctx context.Context, g *graph.Graph, p algo.Params) (*ranking.Result, error) {
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return ranking.NewResult("block", g, make([]float64, g.NumNodes()))
		},
	})
	s, err := New(Config{
		Registry: reg,
		Catalog:  catalog,
		Store:    store,
		Workers:  2,
		Admission: task.AdmissionConfig{
			InteractiveSlots: 1,
			RetryAfter:       2 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Scheduler().Shutdown(ctx)
	}()
	ts := httptest.NewServer(s)
	defer ts.Close()

	// The blocker takes the only slot at submit time.
	sub, status := postTasks(t, ts.URL, `{"tasks": [{"dataset": "complete-50", "algorithm": "block"}]}`)
	if status != http.StatusAccepted || len(sub.TaskIDs) != 1 {
		t.Fatalf("blocker submit status %d, ids %v", status, sub.TaskIDs)
	}
	blockerID := sub.TaskIDs[0]

	// Wait until the blocker is RUNNING: its graph load has then
	// happened, so any further load can only come from the reject path
	// (which must never pay one).
	deadline := time.Now().Add(10 * time.Second)
	for {
		var tv taskView
		getJSON(t, ts.URL+"/api/tasks/"+blockerID, &tv)
		if tv.Task.State == task.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocker never started (state %s)", tv.Task.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	loadsBefore := s.Scheduler().AdmissionStats().GraphLoads

	// Flood: 4x over the slot capacity twice over, fully concurrent.
	const flood = 16
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		got429     int
		badStatus  []int
		retryAfter = map[string]int{}
	)
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/api/tasks", "application/json", strings.NewReader(bipprBody))
			if err != nil {
				t.Error(err)
				return
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			mu.Lock()
			defer mu.Unlock()
			if resp.StatusCode != http.StatusTooManyRequests {
				badStatus = append(badStatus, resp.StatusCode)
				return
			}
			got429++
			retryAfter[resp.Header.Get("Retry-After")]++
			if !strings.Contains(string(data), "shed") {
				t.Errorf("429 body %q does not explain the shed", data)
			}
		}()
	}
	wg.Wait()

	if len(badStatus) != 0 || got429 != flood {
		t.Fatalf("flood: %d/%d shed with 429, other statuses %v", got429, flood, badStatus)
	}
	if retryAfter["2"] != flood {
		t.Errorf("Retry-After headers %v, want %d x %q", retryAfter, flood, "2")
	}

	// The reject path must not have loaded a single graph.
	if loads := s.Scheduler().AdmissionStats().GraphLoads; loads != loadsBefore {
		t.Errorf("reject path loaded graphs: %d -> %d", loadsBefore, loads)
	}

	// The serving row must reconcile exactly with the harness tallies.
	var statusDoc statusResponse
	getJSON(t, ts.URL+"/api/status", &statusDoc)
	serving := statusDoc.Serving
	if !serving.Enabled || serving.InteractiveSlots != 1 {
		t.Errorf("serving row %+v not reporting the configured tier", serving)
	}
	if serving.ShedSlots != flood || serving.ShedQueue != 0 || serving.ShedBacklog != 0 {
		t.Errorf("shed counters slots=%d queue=%d backlog=%d, want %d/0/0",
			serving.ShedSlots, serving.ShedQueue, serving.ShedBacklog, flood)
	}
	if serving.AdmittedInteractive != 1 || serving.Inflight != 1 {
		t.Errorf("admitted %d inflight %d, want 1/1", serving.AdmittedInteractive, serving.Inflight)
	}

	// /metrics must tell the same story.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(scrape), `cyclerank_admission_shed_total{reason="slots"} 16`) {
		t.Error("scrape does not carry the shed counter")
	}
	if !strings.Contains(string(scrape), `cyclerank_admission_admitted_total{class="interactive"} 1`) {
		t.Error("scrape does not carry the admitted counter")
	}

	// Batch-class traffic is never shed: with the interactive tier
	// still saturated, a queries submission (batch by default) must be
	// admitted and complete on the dedicated batch pool.
	const batchBody = `{"dataset": "complete-50", "algorithm": "bippr-pair",
		"queries": [{"params": {"source": "0", "target": "1", "walks": 256}}]}`
	bsub, bstatus := postTasks(t, ts.URL, batchBody)
	if bstatus != http.StatusAccepted || len(bsub.TaskIDs) != 1 {
		t.Fatalf("batch submit under saturation: status %d, ids %v", bstatus, bsub.TaskIDs)
	}
	batchLoaded := waitTask(t, ts.URL, bsub.TaskIDs[0])
	if batchLoaded.Task.State != task.StateDone {
		t.Fatalf("batch under saturation state %s: %s", batchLoaded.Task.State, batchLoaded.Task.Error)
	}
	if got := s.Scheduler().AdmissionStats().AdmittedBatch; got != 1 {
		t.Errorf("admitted_batch = %d, want 1", got)
	}

	// Release the tier: cancel the blocker and wait for the slot to
	// return to the budget.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/tasks/"+blockerID, nil)
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	deadline = time.Now().Add(5 * time.Second)
	for s.Scheduler().AdmissionStats().Inflight != 0 {
		if time.Now().After(deadline) {
			t.Fatal("slot never returned after cancelling the blocker")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Shed is not brownout: the same query, now admitted, must return
	// results bit-identical to a server that never saw the flood.
	sub, status = postTasks(t, ts.URL, bipprBody)
	if status != http.StatusAccepted || len(sub.TaskIDs) != 1 {
		t.Fatalf("post-flood submit status %d, ids %v", status, sub.TaskIDs)
	}
	loaded := waitTask(t, ts.URL, sub.TaskIDs[0])
	if loaded.Task.State != task.StateDone {
		t.Fatalf("admitted task state %s: %s", loaded.Task.State, loaded.Task.Error)
	}
	if loaded.Task.EstimatedCost <= 0 {
		t.Errorf("admitted task carries no estimated_cost: %+v", loaded.Task.EstimatedCost)
	}

	_, pristine := newTestServer(t)
	sub, status = postTasks(t, pristine.URL, bipprBody)
	if status != http.StatusAccepted || len(sub.TaskIDs) != 1 {
		t.Fatalf("pristine submit status %d, ids %v", status, sub.TaskIDs)
	}
	want := waitTask(t, pristine.URL, sub.TaskIDs[0])
	if want.Task.State != task.StateDone {
		t.Fatalf("pristine task state %s: %s", want.Task.State, want.Task.Error)
	}
	if loaded.Result == nil || want.Result == nil {
		t.Fatal("missing result documents")
	}
	if len(loaded.Result.Top) == 0 || len(loaded.Result.Top) != len(want.Result.Top) {
		t.Fatalf("top sizes differ: %d vs %d", len(loaded.Result.Top), len(want.Result.Top))
	}
	for i := range want.Result.Top {
		if loaded.Result.Top[i] != want.Result.Top[i] {
			t.Errorf("top[%d] differs under load: %+v vs %+v", i, loaded.Result.Top[i], want.Result.Top[i])
		}
	}

	// The batch that ran DURING saturation matches the pristine result
	// too: shedding protects interactive latency, it never degrades
	// batch answers.
	if batchLoaded.Result == nil || len(batchLoaded.Result.Queries) != 1 {
		t.Fatal("saturated batch is missing its subresult")
	}
	bTop := batchLoaded.Result.Queries[0].Top
	if len(bTop) != len(want.Result.Top) {
		t.Fatalf("saturated batch top size %d, want %d", len(bTop), len(want.Result.Top))
	}
	for i := range want.Result.Top {
		if bTop[i] != want.Result.Top[i] {
			t.Errorf("batch top[%d] differs under load: %+v vs %+v", i, bTop[i], want.Result.Top[i])
		}
	}
}

// TestLearnedPrewarmSurvivesRestart runs real traffic against one
// server, closes it (persisting the workload sketch), boots a second
// server over the same datastore and checks the learned pre-warm warms
// and pins exactly the artifacts the observed traffic demanded.
func TestLearnedPrewarmSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	catalogOf := func() *datasets.Catalog {
		c, err := datasets.BuiltinCatalogSubset("complete-50")
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	// Boot 1: observe traffic, then close (the saver's final write
	// persists the sketch).
	store1, err := datastore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(Config{Catalog: catalogOf(), Store: store1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	runOneTask(t, ts1) // bippr-pair "0"->"1": one idx key + one ep key recorded
	var st1 statusResponse
	getJSON(t, ts1.URL+"/api/status", &st1)
	if !st1.Traffic.Enabled || st1.Traffic.Recorded != 2 || st1.Traffic.Restored {
		t.Fatalf("boot 1 traffic row %+v, want enabled, 2 recorded, not restored", st1.Traffic)
	}
	ts1.Close()
	s1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s1.Scheduler().Shutdown(ctx)

	// Boot 2: same datastore, pre-warm on. The learned phase must parse
	// the restored heavy hitters and warm both artifacts.
	store2, err := datastore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{Catalog: catalogOf(), Store: store2, Workers: 1, PreWarm: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		s2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s2.Scheduler().Shutdown(ctx)
	}()

	deadline := time.Now().Add(20 * time.Second)
	for s2.prewarm.snapshot().State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("pre-warm did not finish: %+v", s2.prewarm.snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}

	traffic := s2.trafficStatus()
	if !traffic.Restored {
		t.Error("boot 2 sketch not restored from the persisted artifact")
	}
	if traffic.Recorded != 2 || traffic.Tracked != 2 {
		t.Errorf("boot 2 traffic %+v, want the 2 observed keys back", traffic)
	}
	warm := s2.prewarm.snapshot()
	if warm.LearnedKeys != 2 || warm.LearnedWarmed != 2 || warm.LearnedErrors != 0 {
		t.Errorf("learned pre-warm %+v, want keys=2 warmed=2 errors=0", warm)
	}
	if traffic.Pinned != 2 {
		t.Errorf("pinned %d artifacts, want 2", traffic.Pinned)
	}

	// The pins are real store-relative paths: a cap-pressured sweep
	// must spare them even when the cap says reap everything.
	pins := s2.trafficState.pinnedPaths()
	if len(pins) != 2 {
		t.Fatalf("pin set %v, want 2 paths", pins)
	}
	idxFiles, _, err := store2.IndexUsage()
	if err != nil || idxFiles == 0 {
		t.Fatalf("no persisted index artifacts (%d files, %v)", idxFiles, err)
	}
	st, err := store2.SweepArtifactsPolicy(datastore.SweepPolicy{TotalBytes: 1, Pinned: pins})
	if err != nil {
		t.Fatal(err)
	}
	idxAfter, _, err := store2.IndexUsage()
	if err != nil {
		t.Fatal(err)
	}
	epAfter, _, err := store2.EndpointUsage()
	if err != nil {
		t.Fatal(err)
	}
	if idxAfter+epAfter < 2 {
		t.Errorf("sweep reaped pinned artifacts: %d idx + %d ep left (sweep stats %+v)",
			idxAfter, epAfter, st)
	}
}
