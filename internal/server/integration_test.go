package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/datasets"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/task"
)

// TestTableIThroughPlatform reproduces the paper's Table I the way a
// demo user would: submit the three-algorithm query set over HTTP,
// follow the comparison permalink, and read the top-5 columns — the
// full Figure-1 pipeline (gateway → task builder → scheduler →
// executors → datastore → status) in one pass.
func TestTableIThroughPlatform(t *testing.T) {
	store, err := datastore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := datasets.BuiltinCatalogSubset("enwiki-2018")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Registry: algo.NewBuiltinRegistry(),
		Catalog:  catalog,
		Store:    store,
		Workers:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	querySet := `{"tasks": [
		{"dataset": "enwiki-2018", "algorithm": "pagerank",  "params": {"alpha": 0.85}},
		{"dataset": "enwiki-2018", "algorithm": "cyclerank", "params": {"source": "Freddie Mercury", "k": 3, "scoring": "exp"}},
		{"dataset": "enwiki-2018", "algorithm": "ppr",       "params": {"source": "Freddie Mercury", "alpha": 0.3}}
	]}`
	resp, err := http.Post(ts.URL+"/api/tasks", "application/json", strings.NewReader(querySet))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var cmp compareResponse
	deadline := time.Now().Add(30 * time.Second)
	for !cmp.Done {
		if time.Now().After(deadline) {
			t.Fatal("query set did not finish")
		}
		r, err := http.Get(ts.URL + "/api/compare/" + sub.ComparisonID)
		if err != nil {
			t.Fatal(err)
		}
		cmp = compareResponse{}
		err = json.NewDecoder(r.Body).Decode(&cmp)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	byAlgo := map[string][]string{}
	for _, tv := range cmp.Tasks {
		if tv.Task.State != task.StateDone {
			t.Fatalf("%s failed: %s", tv.Task.Algorithm, tv.Task.Error)
		}
		var labels []string
		for i, e := range tv.Result.Top {
			if i >= 5 {
				break
			}
			labels = append(labels, e.Label)
		}
		byAlgo[tv.Task.Algorithm] = labels
	}

	// Table I, PageRank column: the five global hubs in order.
	wantPR := []string{"United States", "Animal", "Arthropod", "Association football", "Insect"}
	for i, want := range wantPR {
		if byAlgo["pagerank"][i] != want {
			t.Errorf("PR[%d] = %q, want %q", i, byAlgo["pagerank"][i], want)
		}
	}
	// Table I, CycleRank column: the band community in order.
	wantCR := []string{"Freddie Mercury", "Queen (band)", "Brian May", "Roger Taylor", "John Deacon"}
	for i, want := range wantCR {
		if byAlgo["cyclerank"][i] != want {
			t.Errorf("CR[%d] = %q, want %q", i, byAlgo["cyclerank"][i], want)
		}
	}
	// PPR surfaces at least one global hub; CycleRank surfaces none.
	hubs := map[string]bool{"United States": true, "HIV/AIDS": true, "Animal": true}
	leak := false
	for _, l := range byAlgo["ppr"] {
		if hubs[l] {
			leak = true
		}
	}
	if !leak {
		t.Errorf("PPR column shows no hub leak: %v", byAlgo["ppr"])
	}
	for _, l := range byAlgo["cyclerank"] {
		if hubs[l] {
			t.Errorf("CycleRank column contains hub %q", l)
		}
	}

	// And the quantified comparison endpoint agrees the two rankings
	// differ but overlap.
	var ag agreementResponse
	r := getJSON(t, ts.URL+"/api/compare/"+sub.ComparisonID+"/agreement?k=10", &ag)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("agreement status %d", r.StatusCode)
	}
	for _, p := range ag.Pairs {
		if p.AlgorithmA == "cyclerank" && p.AlgorithmB == "ppr" ||
			p.AlgorithmA == "ppr" && p.AlgorithmB == "cyclerank" {
			if p.Jaccard == 0 || p.Jaccard == 1 {
				t.Errorf("cyclerank/ppr jaccard = %v; expected partial overlap", p.Jaccard)
			}
		}
	}
}
