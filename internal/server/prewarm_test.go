package server

import (
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/bippr"
	"github.com/cyclerank/cyclerank-go/internal/datasets"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/task"
)

// newPrewarmServer builds a server with the pre-warm task enabled
// over the given datastore directory and catalog subset.
func newPrewarmServer(t *testing.T, dir string, datasetNames ...string) (*Server, *httptest.Server) {
	t.Helper()
	store, err := datastore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := datasets.BuiltinCatalogSubset(datasetNames...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Catalog: catalog, Store: store, Workers: 2, PreWarm: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// waitPrewarm polls /api/status until the pre-warm task reaches a
// terminal state.
func waitPrewarm(t *testing.T, url string) statusResponse {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st statusResponse
		getJSON(t, url+"/api/status", &st)
		if st.Prewarm.State == "done" || st.Prewarm.State == "cancelled" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("pre-warm did not finish: %+v", st.Prewarm)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPrewarmWarmsAcrossRestart: the pre-warm task computes and
// persists every suggested node's index and endpoint recording; a
// restarted server's pre-warm finds all of them on disk, and the
// first user query against a suggested node pays no reverse push.
func TestPrewarmWarmsAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	srv1, ts1 := newPrewarmServer(t, dir, "enwiki-2018")
	st1 := waitPrewarm(t, ts1.URL)
	if st1.Prewarm.State != "done" {
		t.Fatalf("first pre-warm state %q", st1.Prewarm.State)
	}
	p := st1.Prewarm
	if p.NodesTotal == 0 || p.NodesDone != p.NodesTotal || p.DatasetsDone != p.DatasetsTotal {
		t.Fatalf("pre-warm progress incomplete: %+v", p)
	}
	if p.Errors != 0 {
		t.Fatalf("pre-warm errors: %+v", p)
	}
	if p.IndexesComputed != p.NodesTotal || p.EndpointsRecorded != p.NodesTotal {
		t.Fatalf("cold pre-warm should compute everything: %+v", p)
	}
	// The artifacts are on disk for the next process.
	if st1.IndexStore.DiskWrites != int64(p.NodesTotal) || st1.EndpointCache.DiskWrites != int64(p.NodesTotal) {
		t.Fatalf("pre-warm did not persist: indexes %d, endpoints %d, want %d each",
			st1.IndexStore.DiskWrites, st1.EndpointCache.DiskWrites, p.NodesTotal)
	}
	srv1.Close()
	ts1.Close()

	// Restart: the same pre-warm now only deserializes.
	_, ts2 := newPrewarmServer(t, dir, "enwiki-2018")
	st2 := waitPrewarm(t, ts2.URL)
	p2 := st2.Prewarm
	if p2.State != "done" || p2.Errors != 0 {
		t.Fatalf("second pre-warm: %+v", p2)
	}
	if p2.IndexesWarm != p2.NodesTotal || p2.EndpointsWarm != p2.NodesTotal {
		t.Fatalf("restarted pre-warm recomputed instead of loading: %+v", p2)
	}
	if st2.IndexStore.Misses != 0 || st2.EndpointCache.Misses != 0 {
		t.Fatalf("restarted pre-warm paid misses: %+v / %+v", st2.IndexStore, st2.EndpointCache)
	}

	// The first "user" query against a suggested node at default
	// parameters is already warm: no reverse push anywhere.
	out, status := postTasks(t, ts2.URL, `{"tasks": [
		{"dataset": "enwiki-2018", "algorithm": "ppr-target", "params": {"target": "Freddie Mercury"}}
	]}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	view := waitTask(t, ts2.URL, out.TaskIDs[0])
	if view.Task.State != task.StateDone {
		t.Fatalf("warm query %s (%s)", view.Task.State, view.Task.Error)
	}
	var st3 statusResponse
	getJSON(t, ts2.URL+"/api/status", &st3)
	if st3.IndexStore.Misses != 0 {
		t.Fatalf("first user query paid a reverse push despite pre-warm: %+v", st3.IndexStore)
	}
}

// TestPrewarmCancelLeavesNoPartialArtifacts: closing the server
// mid-warm stops the task promptly and — because every artifact write
// goes through the datastore's atomic-rename path — leaves no partial
// or undecodable artifacts and no temp files behind.
func TestPrewarmCancelLeavesNoPartialArtifacts(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newPrewarmServer(t, dir, "enwiki-2018", "dewiki-2018", "amazon", "twitter-cop27")
	// Close as early as possible: depending on timing the warm task is
	// interrupted mid-dataset, between nodes, or inside a walk pass.
	srv.Close()

	var st statusResponse
	getJSON(t, ts.URL+"/api/status", &st)
	if st.Prewarm.State != "cancelled" && st.Prewarm.State != "done" {
		t.Fatalf("after Close the pre-warm is still %q", st.Prewarm.State)
	}

	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.HasPrefix(d.Name(), ".tmp-") {
			t.Errorf("temp file left behind: %s", path)
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		switch {
		case strings.HasSuffix(d.Name(), ".idx"):
			if _, err := bippr.DecodeIndex(data); err != nil {
				t.Errorf("partial index artifact %s: %v", path, err)
			}
		case strings.HasSuffix(d.Name(), ".ep"):
			if _, err := bippr.DecodeEndpoints(data); err != nil {
				t.Errorf("partial endpoint artifact %s: %v", path, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestArtifactGCSweepsInBackground: a server with a byte cap reaps
// oldest-accessed artifacts on its sweep loop and reports the pass in
// /api/status.
func TestArtifactGCSweepsInBackground(t *testing.T) {
	prev := artifactSweepInterval
	artifactSweepInterval = 20 * time.Millisecond
	t.Cleanup(func() { artifactSweepInterval = prev })

	dir := t.TempDir()
	store, err := datastore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Seed artifacts over the cap before the server starts, with a
	// stale access clock so the sweep order is deterministic.
	old := time.Now().Add(-time.Hour)
	for _, k := range []string{"k1", "k2", "k3"} {
		if err := store.SaveIndex("fp", k, make([]byte, 1000)); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(filepath.Join(dir, "indexes", "fp", k+".idx"), old, old); err != nil {
			t.Fatal(err)
		}
	}
	catalog, err := datasets.BuiltinCatalogSubset("complete-50")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Catalog: catalog, Store: store, Workers: 1, ArtifactCapBytes: 1500})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		var st statusResponse
		getJSON(t, ts.URL+"/api/status", &st)
		if st.ArtifactGC.Sweeps >= 1 && st.ArtifactGC.LastSweep.Reaped >= 2 {
			if st.ArtifactGC.CapBytes != 1500 {
				t.Fatalf("cap not reported: %+v", st.ArtifactGC)
			}
			if st.ArtifactGC.LastSweep.Bytes > 1500 {
				t.Fatalf("sweep left usage over the cap: %+v", st.ArtifactGC)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweeper never reaped: %+v", st.ArtifactGC)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
