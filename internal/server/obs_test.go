package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/datasets"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/obs"
)

// runOneTask submits a single bippr pair query and waits for it.
func runOneTask(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	body := `{"tasks": [{"dataset": "complete-50", "algorithm": "bippr-pair",
		"params": {"source": "0", "target": "1", "walks": 256}}]}`
	resp, err := http.Post(ts.URL+"/api/tasks", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if len(sub.TaskIDs) != 1 {
		t.Fatalf("submit response %+v", sub)
	}
	id := sub.TaskIDs[0]
	deadline := time.Now().Add(10 * time.Second)
	for {
		var tv taskView
		getJSON(t, ts.URL+"/api/tasks/"+id, &tv)
		if tv.Task.State.Terminal() {
			if tv.Task.State != "done" {
				t.Fatalf("task state %s (error %q)", tv.Task.State, tv.Task.Error)
			}
			return id
		}
		if time.Now().After(deadline) {
			t.Fatal("task did not finish")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMetricsEndpoint scrapes /metrics after real work and checks the
// output is well-formed Prometheus text carrying every component's
// families — the scrape merges the process registry with the
// scheduler, index store, endpoint cache, datastore and server ones.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	runOneTask(t, ts)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	families, err := obs.CheckExposition(data)
	if err != nil {
		t.Fatalf("malformed exposition: %v", err)
	}
	got := make(map[string]bool, len(families))
	for _, f := range families {
		got[f] = true
	}
	for _, want := range []string{
		// One representative family per instrumented component.
		"cyclerank_bippr_reverse_push_runs_total", // bippr hot path
		"cyclerank_scheduler_tasks_total",         // scheduler workload
		"cyclerank_artifact_cache_hits_total",     // index store + endpoint cache
		"cyclerank_datastore_fsyncs_total",        // datastore
		"cyclerank_prewarm_nodes_done_total",      // server lifecycle
		"cyclerank_artifact_gc_sweeps_total",      // artifact GC
		"cyclerank_scheduler_task_run_seconds",    // latency histograms render
		"cyclerank_endpoint_cache_walks_avoided_total",
	} {
		if !got[want] {
			t.Errorf("scrape missing family %s (have %v)", want, families)
		}
	}
	// The task that just ran must be visible in the counters.
	if !strings.Contains(string(data), `cyclerank_scheduler_tasks_total{state="done"} 1`) {
		t.Error("done-task counter not reflected in scrape")
	}
}

// TestTaskViewReportsPhasesAndTiming checks the API satellite: a done
// task's JSON carries wait_ms/run_ms and its result the phase tree.
func TestTaskViewReportsPhasesAndTiming(t *testing.T) {
	_, ts := newTestServer(t)
	id := runOneTask(t, ts)

	resp, err := http.Get(ts.URL + "/api/tasks/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw struct {
		Task struct {
			WaitMS *int64 `json:"wait_ms"`
			RunMS  *int64 `json:"run_ms"`
		} `json:"task"`
		Result *struct {
			Phases []obs.SpanNode `json:"phases"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	// wait_ms/run_ms are omitempty, so a 0ms run may legitimately drop
	// them; the task above pushes and walks, making run_ms volatile —
	// assert on presence of the result phases, the stable signal.
	if raw.Result == nil || len(raw.Result.Phases) == 0 {
		t.Fatalf("task view carries no phases: %+v", raw)
	}
	names := make(map[string]bool)
	for _, n := range raw.Result.Phases {
		names[n.Name] = true
	}
	if !names["reverse_push"] && !names["walks"] {
		t.Fatalf("phase names %v lack bippr phases", names)
	}
}

// TestStatusJSONBackCompat locks the exact key set of every migrated
// /api/status row: moving the counters into the obs registry must not
// rename, drop or add JSON fields that existing dashboards parse.
func TestStatusJSONBackCompat(t *testing.T) {
	s, ts := newTestServer(t)
	// Load a dataset so the graphs array carries a row to pin.
	if _, err := s.Scheduler().LoadGraph("complete-50"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/api/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	keysOf := func(field string) map[string]bool {
		t.Helper()
		var m map[string]json.RawMessage
		if err := json.Unmarshal(raw[field], &m); err != nil {
			t.Fatalf("row %q: %v", field, err)
		}
		out := make(map[string]bool, len(m))
		for k := range m {
			out[k] = true
		}
		return out
	}
	want := map[string][]string{
		"index_store": {"memory_hits", "disk_hits", "misses", "disk_writes",
			"disk_bytes_written", "disk_errors", "memory_entries",
			"disk_files", "disk_bytes"},
		"endpoint_cache": {"hits", "misses", "entries", "pairs",
			"walks_avoided", "disk_hits", "disk_writes",
			"disk_bytes_written", "disk_errors", "disk_files", "disk_bytes"},
		"prewarm": {"state", "datasets_total", "datasets_done", "nodes_total",
			"nodes_done", "indexes_warm", "indexes_computed", "endpoints_warm",
			"endpoints_recorded", "errors",
			"learned_keys", "learned_warmed", "learned_errors"},
		"artifact_gc": {"cap_bytes", "sweeps", "last_sweep"},
	}
	for row, fields := range want {
		got := keysOf(row)
		for _, f := range fields {
			if !got[f] {
				t.Errorf("status row %q lost key %q (have %v)", row, f, got)
			}
			delete(got, f)
		}
		for extra := range got {
			t.Errorf("status row %q gained unexpected key %q", row, extra)
		}
	}
	// The graphs row is an array; pin the exact key set of its
	// per-dataset entries the same way.
	var graphs []map[string]json.RawMessage
	if err := json.Unmarshal(raw["graphs"], &graphs); err != nil {
		t.Fatalf("row %q: %v", "graphs", err)
	}
	if len(graphs) == 0 {
		t.Fatal("status graphs row empty after LoadGraph")
	}
	graphFields := []string{"name", "nodes", "edges", "memory_bytes",
		"layout_bytes", "sample_table_bytes", "compressed_bytes"}
	got := graphs[0]
	for _, f := range graphFields {
		if _, ok := got[f]; !ok {
			t.Errorf("status graphs row lost key %q", f)
		}
		delete(got, f)
	}
	for extra := range got {
		t.Errorf("status graphs row gained unexpected key %q", extra)
	}
}

// TestPprofGating checks /debug/pprof/ is absent by default and
// served when Config.EnablePprof is set.
func TestPprofGating(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Without the flag the catch-all / route answers; pprof's index
	// page must not.
	if resp.StatusCode == http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		if bytes.Contains(b, []byte("profiles")) {
			t.Fatal("pprof served without EnablePprof")
		}
	}

	store, err := datastore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := datasets.BuiltinCatalogSubset("complete-50")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Registry:    algo.NewBuiltinRegistry(),
		Catalog:     catalog,
		Store:       store,
		Workers:     1,
		EnablePprof: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s)
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/debug/pprof/heap?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof heap status %d with EnablePprof", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(b, []byte("heap profile")) {
		t.Errorf("heap profile body missing header: %.100s", b)
	}
}
