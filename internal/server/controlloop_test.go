package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/bippr"
	"github.com/cyclerank/cyclerank-go/internal/datasets"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
	"github.com/cyclerank/cyclerank-go/internal/task"
	"github.com/cyclerank/cyclerank-go/internal/traffic"
)

// bootControlServer opens a datastore over dir and boots a server for
// the control-loop tests. Catalog and store are filled in; the caller
// owns shutdown (sequential boots inside one test need explicit
// ordering that t.Cleanup cannot express).
func bootControlServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	store, err := datastore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := datasets.BuiltinCatalogSubset("complete-50")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Catalog = catalog
	cfg.Store = store
	if cfg.Registry == nil {
		cfg.Registry = algo.NewBuiltinRegistry()
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, httptest.NewServer(s)
}

func closeBoot(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	ts.Close()
	s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Scheduler().Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestControlLoopCalibrationConverges closes acceptance point (a): the
// EWMA calibrator learns a real units/ms rate from completed tasks, the
// learned rate turns the next submission's abstract units into a
// milliseconds prediction inside a logged sanity band of the measured
// run time, and the calibration survives a restart via the traffic
// sketch artifact.
func TestControlLoopCalibrationConverges(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := bootControlServer(t, dir, Config{})

	// Feed the calibrator: identical bidirectional queries, so the
	// family rate converges on this machine's actual speed for them.
	const warmupRuns = 6
	for i := 0; i < warmupRuns; i++ {
		runOneTask(t, ts1)
	}
	cal := s1.Scheduler().CalibrationSnapshot()
	learned, ok := cal[task.FamilyBidirectional]
	if !ok || learned.Observations != warmupRuns || !(learned.UnitsPerMS > 0) {
		t.Fatalf("calibration after %d runs: %+v", warmupRuns, cal)
	}
	t.Logf("learned %s rate: %.0f units/ms over %d observations",
		task.FamilyBidirectional, learned.UnitsPerMS, learned.Observations)

	// The next task's prediction is made from the learned rate at
	// submit time; compare it against what actually happened. The band
	// is deliberately wide — CI machines jitter — but a fallback-rate
	// prediction or a truncation-poisoned rate lands far outside it.
	id := runOneTask(t, ts1)
	var tv taskView
	getJSON(t, ts1.URL+"/api/tasks/"+id, &tv)
	if tv.Task.PredictedMS <= 0 || tv.Task.CostFamily != task.FamilyBidirectional {
		t.Fatalf("task not stamped with prediction: family %q predicted_ms %v",
			tv.Task.CostFamily, tv.Task.PredictedMS)
	}
	actualMS := tv.Task.Finished.Sub(tv.Task.Started).Seconds() * 1e3
	ratio := tv.Task.PredictedMS / actualMS
	t.Logf("predicted %.3fms, measured %.3fms, ratio %.2f", tv.Task.PredictedMS, actualMS, ratio)
	if ratio < 0.02 || ratio > 50 {
		t.Errorf("prediction ratio %.3f outside sanity band [0.02, 50]", ratio)
	}

	closeBoot(t, s1, ts1) // final save persists calibration in the sketch

	// Boot 2 over the same datastore: the calibrator must be seeded
	// from the artifact BEFORE any task runs.
	s2, ts2 := bootControlServer(t, dir, Config{})
	defer closeBoot(t, s2, ts2)
	restored := s2.Scheduler().CalibrationSnapshot()
	got, ok := restored[task.FamilyBidirectional]
	if !ok || got.Observations < uint64(warmupRuns) || !(got.UnitsPerMS > 0) {
		t.Fatalf("boot 2 calibration not restored: %+v", restored)
	}
	// And the serving row surfaces it.
	var st statusResponse
	getJSON(t, ts2.URL+"/api/status", &st)
	if st.Serving.Calibration[task.FamilyBidirectional].Observations < uint64(warmupRuns) {
		t.Errorf("serving row calibration missing: %+v", st.Serving.Calibration)
	}
}

// TestControlLoopSLOShedEndToEnd closes acceptance point (b): when the
// interactive p99 breaches the SLO, the next submission sheds with
// reason "slo" while every occupancy limit is stone cold, and the shed
// is visible in both /api/status and /metrics.
func TestControlLoopSLOShedEndToEnd(t *testing.T) {
	reg := algo.NewBuiltinRegistry()
	reg.Register(algo.Func{
		AlgoName: "slow",
		AlgoDesc: "sleeps long enough to breach the test SLO",
		RunFunc: func(ctx context.Context, g *graph.Graph, p algo.Params) (*ranking.Result, error) {
			select {
			case <-time.After(60 * time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return ranking.NewResult("slow", g, make([]float64, g.NumNodes()))
		},
	})
	s, ts := bootControlServer(t, t.TempDir(), Config{
		Registry: reg,
		Admission: task.AdmissionConfig{
			InteractiveSlots: 8,
			SLOInteractive:   20 * time.Millisecond,
		},
	})
	defer closeBoot(t, s, ts)

	// Sequential slow tasks build the latency window; each is admitted
	// because the p99 only counts once enough samples are live.
	const slowBody = `{"tasks": [{"dataset": "complete-50", "algorithm": "slow"}]}`
	for i := 0; i < 5; i++ {
		sub, status := postTasks(t, ts.URL, slowBody)
		if status != http.StatusAccepted {
			t.Fatalf("slow task %d shed prematurely: status %d", i, status)
		}
		if view := waitTask(t, ts.URL, sub.TaskIDs[0]); view.Task.State != task.StateDone {
			t.Fatalf("slow task %d state %s: %s", i, view.Task.State, view.Task.Error)
		}
	}

	// The tier is idle — zero inflight, zero backlog — but the p99 says
	// the SLO is breached, and that alone must shed.
	resp, err := http.Post(ts.URL+"/api/tasks", "application/json", strings.NewReader(slowBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("post-breach submit status %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "slo") {
		t.Errorf("429 body %q does not name the slo limit", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("slo shed carries no Retry-After header")
	}

	var st statusResponse
	getJSON(t, ts.URL+"/api/status", &st)
	if st.Serving.ShedSLO != 1 {
		t.Errorf("serving row shed_slo = %d, want 1", st.Serving.ShedSLO)
	}
	if st.Serving.Inflight != 0 || st.Serving.PendingInteractive != 0 || st.Serving.BacklogUnits != 0 {
		t.Errorf("occupancy not cold at shed time: %+v", st.Serving)
	}
	if st.Serving.InteractiveP99MS <= 20 {
		t.Errorf("serving row p99 %.1fms does not show the breach", st.Serving.InteractiveP99MS)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(scrape), `cyclerank_admission_shed_total{reason="slo"} 1`) {
		t.Error("scrape does not carry the slo shed counter")
	}
	// The control loop's new metric families are all scrapeable.
	for _, fam := range []string{
		"cyclerank_admission_backlog_ms",
		"cyclerank_admission_interactive_slots",
		"cyclerank_admission_interactive_p99_seconds",
		"cyclerank_admission_slot_adjustments_total",
		"cyclerank_class_run_seconds",
		"cyclerank_cost_calibration_units_per_ms",
		"cyclerank_cost_prediction_ratio",
		"cyclerank_traffic_decay_epoch",
		"cyclerank_traffic_decays_total",
	} {
		if !strings.Contains(string(scrape), fam) {
			t.Errorf("scrape missing metric family %s", fam)
		}
	}
}

// TestControlLoopTrafficDecayThreeBoots closes acceptance point (c):
// a hot key persisted in a LEGACY v1 sketch artifact still loads, gets
// pinned by the learned pre-warm while hot, decays across a boot with
// a short half-life, and by the third boot has aged out of the pre-warm
// pin set — with the decay epoch carried in the v2 artifact so
// restarts never replay or skip halvings.
func TestControlLoopTrafficDecayThreeBoots(t *testing.T) {
	dir := t.TempDir()

	// Seed a v1-format artifact holding the exact warm keys a
	// bippr-pair "0"->"1" query records (defaults applied, so the
	// pre-warm recomputes byte-identical cache keys).
	store, err := datastore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sk, _ := traffic.Load(nil, 0)
	bp := bippr.Params{}.WithDefaults()
	sk.Record(traffic.WarmKey{
		Kind: traffic.KindIndex, Dataset: "complete-50", Node: "1",
		Alpha: bp.Alpha, RMax: bp.RMax,
	}.String())
	sk.Record(traffic.WarmKey{
		Kind: traffic.KindEndpoints, Dataset: "complete-50", Node: "0",
		Alpha: bp.Alpha, Seed: bp.Seed, MaxSteps: bp.MaxSteps, Walks: bp.Walks,
	}.String())
	if err := store.SaveTrafficSketch(sk.EncodeV1()); err != nil {
		t.Fatal(err)
	}

	// Boot 1: the v1 artifact loads (restored, epoch 0) and the learned
	// pre-warm pins both hot artifacts. No decay this boot.
	s1, ts1 := bootControlServer(t, dir, Config{PreWarm: true, TrafficHalfLife: -1})
	waitControlPrewarm(t, s1)
	tr := s1.trafficStatus()
	if !tr.Restored || tr.DecayEpoch != 0 || tr.Tracked != 2 {
		t.Fatalf("boot 1 did not restore the v1 artifact: %+v", tr)
	}
	if tr.Pinned != 2 {
		t.Fatalf("boot 1 pinned %d artifacts, want the 2 hot keys", tr.Pinned)
	}
	closeBoot(t, s1, ts1) // persists as v2

	// Boot 2: a short half-life decays the counts (1 each) to zero,
	// dropping both keys from the heavy-hitter table.
	s2, ts2 := bootControlServer(t, dir, Config{TrafficHalfLife: 25 * time.Millisecond})
	if tr := s2.trafficStatus(); !tr.Restored || tr.Tracked != 2 {
		t.Fatalf("boot 2 did not restore the upgraded artifact: %+v", tr)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		tr = s2.trafficStatus()
		if tr.Tracked == 0 && tr.DecayEpoch >= 1 && tr.Decays >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("boot 2 never decayed the hot keys: %+v", tr)
		}
		time.Sleep(5 * time.Millisecond)
	}
	closeBoot(t, s2, ts2) // persists the decayed sketch + epoch

	// Boot 3: the formerly-hot keys are gone from the restored sketch,
	// so the learned pre-warm finds nothing to warm and pins nothing.
	s3, ts3 := bootControlServer(t, dir, Config{PreWarm: true, TrafficHalfLife: -1})
	defer closeBoot(t, s3, ts3)
	waitControlPrewarm(t, s3)
	tr = s3.trafficStatus()
	if !tr.Restored || tr.DecayEpoch < 1 {
		t.Fatalf("boot 3 lost the decay epoch: %+v", tr)
	}
	if tr.Tracked != 0 || tr.Pinned != 0 {
		t.Errorf("formerly-hot keys still warm on boot 3: tracked %d pinned %d", tr.Tracked, tr.Pinned)
	}
	if warm := s3.prewarm.snapshot(); warm.LearnedKeys != 0 {
		t.Errorf("learned pre-warm saw %d keys, want 0 after decay", warm.LearnedKeys)
	}
}

func waitControlPrewarm(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for s.prewarm.snapshot().State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("pre-warm did not finish: %+v", s.prewarm.snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
