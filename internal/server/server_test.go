package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/datasets"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/task"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	store, err := datastore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := datasets.BuiltinCatalogSubset("complete-50", "ring-1k")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Registry: algo.NewBuiltinRegistry(),
		Catalog:  catalog,
		Store:    store,
		Workers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func TestAlgorithmsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var algos []algorithmInfo
	resp := getJSON(t, ts.URL+"/api/algorithms", &algos)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(algos) != 11 {
		t.Errorf("got %d algorithms, want 11", len(algos))
	}
	var foundCR, foundTarget, foundPair bool
	for _, a := range algos {
		switch a.Name {
		case "cyclerank":
			foundCR = a.NeedsSource
		case "ppr-target":
			foundTarget = a.NeedsTarget && !a.NeedsSource
		case "bippr-pair":
			foundPair = a.NeedsTarget && a.NeedsSource
		}
	}
	if !foundCR {
		t.Error("cyclerank missing or not flagged as personalized")
	}
	if !foundTarget {
		t.Error("ppr-target missing or incorrectly flagged")
	}
	if !foundPair {
		t.Error("bippr-pair missing or incorrectly flagged")
	}
}

// TestTargetQueriesThroughScheduler runs the two bidirectional
// algorithms end-to-end: submit, execute on the worker pool, persist,
// poll. complete-50 is unlabeled, so decimal ids act as labels.
func TestTargetQueriesThroughScheduler(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"tasks": [
		{"dataset": "complete-50", "algorithm": "ppr-target",
		 "params": {"target": "7"}},
		{"dataset": "complete-50", "algorithm": "bippr-pair",
		 "params": {"source": "3", "target": "7", "walks": 200}}
	]}`
	resp, err := http.Post(ts.URL+"/api/tasks", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	var cmp compareResponse
	for {
		getJSON(t, ts.URL+"/api/compare/"+sub.ComparisonID, &cmp)
		if cmp.Done || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !cmp.Done {
		t.Fatal("query set did not finish in time")
	}
	if len(cmp.Tasks) != 2 {
		t.Fatalf("got %d tasks, want 2", len(cmp.Tasks))
	}
	for _, view := range cmp.Tasks {
		if view.Task.State != task.StateDone {
			t.Fatalf("%s finished %s: %s", view.Task.Algorithm, view.Task.State, view.Task.Error)
		}
		if view.Result == nil || len(view.Result.Top) == 0 {
			t.Fatalf("%s produced no result rows", view.Task.Algorithm)
		}
	}
	// On a complete digraph every pair looks alike: π(3,7) must agree
	// with ppr-target's estimate for source 3 (additive rmax error).
	var targetScore, pairScore float64
	for _, view := range cmp.Tasks {
		switch view.Task.Algorithm {
		case "ppr-target":
			for _, e := range view.Result.Top {
				if e.Label == "3" {
					targetScore = e.Score
				}
			}
		case "bippr-pair":
			pairScore = view.Result.Top[0].Score
		}
	}
	if targetScore == 0 || pairScore == 0 {
		t.Fatalf("missing scores: target=%g pair=%g", targetScore, pairScore)
	}
	if diff := pairScore - targetScore; diff < -1e-3 || diff > 1e-3 {
		t.Errorf("pair %g and target %g estimates disagree", pairScore, targetScore)
	}
}

func TestDatasetsEndpointAndStats(t *testing.T) {
	_, ts := newTestServer(t)
	var ds []datasetInfo
	getJSON(t, ts.URL+"/api/datasets", &ds)
	if len(ds) != 2 {
		t.Fatalf("got %d datasets: %+v", len(ds), ds)
	}
	var stats datasetStats
	resp := getJSON(t, ts.URL+"/api/datasets/complete-50", &stats)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if stats.Stats.Nodes != 50 || stats.Stats.Edges != 50*49 {
		t.Errorf("stats = %+v", stats.Stats)
	}
	resp = getJSON(t, ts.URL+"/api/datasets/ghost", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing dataset status = %d", resp.StatusCode)
	}
}

func TestSubmitPollCompareFlow(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"tasks": [
		{"dataset": "complete-50", "algorithm": "pagerank", "params": {"alpha": 0.85}},
		{"dataset": "complete-50", "algorithm": "cyclerank", "params": {"source": "0", "k": 3}}
	]}`
	resp, err := http.Post(ts.URL+"/api/tasks", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if len(sub.TaskIDs) != 2 || sub.ComparisonID == "" {
		t.Fatalf("submit response %+v", sub)
	}

	// Poll the comparison until done.
	deadline := time.Now().Add(10 * time.Second)
	var cmp compareResponse
	for {
		getJSON(t, ts.URL+"/api/compare/"+sub.ComparisonID, &cmp)
		if cmp.Done || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !cmp.Done {
		t.Fatal("comparison did not finish in time")
	}
	for _, v := range cmp.Tasks {
		if v.Task.State != task.StateDone {
			t.Errorf("task %s state %s error %q", v.Task.Algorithm, v.Task.State, v.Task.Error)
			continue
		}
		if v.Result == nil || len(v.Result.Top) == 0 {
			t.Errorf("task %s missing result", v.Task.Algorithm)
		}
	}

	// Individual task view with log.
	var tv taskView
	getJSON(t, ts.URL+"/api/tasks/"+sub.TaskIDs[0]+"?log=1", &tv)
	if tv.Log == "" {
		t.Error("task log empty")
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := map[string]string{
		"bad json":        `{"tasks": [`,
		"empty set":       `{"tasks": []}`,
		"unknown dataset": `{"tasks": [{"dataset": "nope", "algorithm": "pagerank"}]}`,
		"unknown algo":    `{"tasks": [{"dataset": "complete-50", "algorithm": "nope"}]}`,
		"missing source":  `{"tasks": [{"dataset": "complete-50", "algorithm": "cyclerank"}]}`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/api/tasks", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", resp.StatusCode)
			}
		})
	}
}

func TestUploadFlow(t *testing.T) {
	_, ts := newTestServer(t)
	edgelist := "x,y\ny,x\ny,z\nz,y\nz,x\nx,z\n"
	resp, err := http.Post(ts.URL+"/api/datasets/mygraph", "text/csv", strings.NewReader(edgelist))
	if err != nil {
		t.Fatal(err)
	}
	var stats datasetStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	if stats.Stats.Nodes != 3 || stats.Stats.Edges != 6 {
		t.Errorf("uploaded stats %+v", stats.Stats)
	}

	// The uploaded dataset is usable in tasks.
	body := `{"tasks": [{"dataset": "mygraph", "algorithm": "cyclerank", "params": {"source": "x"}}]}`
	resp, err = http.Post(ts.URL+"/api/tasks", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit on upload status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var tv taskView
		getJSON(t, ts.URL+"/api/tasks/"+sub.TaskIDs[0], &tv)
		if tv.Task.State.Terminal() {
			if tv.Task.State != task.StateDone {
				t.Fatalf("task failed: %s", tv.Task.Error)
			}
			if tv.Result.Top[0].Label != "x" {
				t.Errorf("top = %v", tv.Result.Top[0])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("upload task did not finish")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Uploads are listed.
	var ds []datasetInfo
	getJSON(t, ts.URL+"/api/datasets", &ds)
	foundUpload := false
	for _, d := range ds {
		if d.Name == "mygraph" && d.Uploaded {
			foundUpload = true
		}
	}
	if !foundUpload {
		t.Error("uploaded dataset not listed")
	}
}

func TestUploadErrors(t *testing.T) {
	_, ts := newTestServer(t)
	// Overwriting a catalog dataset is forbidden.
	resp, err := http.Post(ts.URL+"/api/datasets/complete-50", "text/csv", strings.NewReader("a,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("catalog overwrite status = %d, want 409", resp.StatusCode)
	}
	// Garbage bodies are rejected.
	resp, err = http.Post(ts.URL+"/api/datasets/bad", "text/csv", strings.NewReader("one two three four\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage upload status = %d, want 400", resp.StatusCode)
	}
	// Explicit bogus format is rejected.
	resp, err = http.Post(ts.URL+"/api/datasets/bad?format=bogus", "text/csv", strings.NewReader("a,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus format status = %d, want 400", resp.StatusCode)
	}
}

func TestUploadSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := datastore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := datasets.BuiltinCatalogSubset("ring-1k")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Registry: algo.NewBuiltinRegistry(), Catalog: catalog, Store: store}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	resp, err := http.Post(ts1.URL+"/api/datasets/persisted", "text/csv", strings.NewReader("a,b\nb,a\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ts1.Close()

	// "Restart": a new server over the same store.
	store2, err := datastore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = store2
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	var stats datasetStats
	r2 := getJSON(t, ts2.URL+"/api/datasets/persisted", &stats)
	if r2.StatusCode != http.StatusOK {
		t.Errorf("persisted dataset lost after restart: %d", r2.StatusCode)
	}
}

func TestHTMLPages(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/", "/instructions"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body := new(bytes.Buffer)
		body.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status %d", path, resp.StatusCode)
		}
		if !strings.Contains(body.String(), "CycleRank demo") {
			t.Errorf("%s missing title", path)
		}
	}
	resp, err := http.Get(ts.URL + "/no-such-page")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown page status %d", resp.StatusCode)
	}
}

func TestComparePageRendersResults(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"tasks": [{"dataset": "complete-50", "algorithm": "pagerank"}]}`
	resp, err := http.Post(ts.URL+"/api/tasks", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		var cmp compareResponse
		getJSON(t, ts.URL+"/api/compare/"+sub.ComparisonID, &cmp)
		if cmp.Done || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	page, err := http.Get(ts.URL + "/compare/" + sub.ComparisonID)
	if err != nil {
		t.Fatal(err)
	}
	buf := new(bytes.Buffer)
	buf.ReadFrom(page.Body)
	page.Body.Close()
	if !strings.Contains(buf.String(), sub.ComparisonID) {
		t.Error("compare page missing comparison id")
	}
	if !strings.Contains(buf.String(), "pagerank") {
		t.Error("compare page missing algorithm")
	}
	// Unknown comparison 404s.
	missing, err := http.Get(ts.URL + "/compare/does-not-exist")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Errorf("unknown compare page status %d", missing.StatusCode)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("accepted empty config")
	}
}
