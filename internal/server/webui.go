package server

import (
	"html/template"
	"net/http"
)

// The Web UI is a deliberately small server-rendered frontend: a task
// builder listing datasets and algorithms, a comparison page that
// auto-refreshes while tasks run, and an instructions page documenting
// upload formats — the same pages the demo exposes.

var uiTemplates = template.Must(template.New("ui").Funcs(template.FuncMap{
	"inc": func(i int) int { return i + 1 },
}).Parse(`
{{define "layout_head"}}<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{{.Title}} — CycleRank demo</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; padding: 0 1rem; color: #1c1e21; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: 1rem 0; width: 100%; }
th, td { border: 1px solid #cbd2d9; padding: 0.35rem 0.6rem; text-align: left; font-size: 0.9rem; }
th { background: #f1f4f8; }
code { background: #f1f4f8; padding: 0.1rem 0.3rem; border-radius: 3px; }
.state-done { color: #0a7d36; } .state-failed { color: #b3261e; }
.state-running, .state-pending { color: #8a6d00; }
nav a { margin-right: 1rem; }
</style>
</head>
<body>
<nav><a href="/">Task builder</a><a href="/instructions">Instructions</a></nav>
<h1>{{.Title}}</h1>{{end}}

{{define "home"}}{{template "layout_head" .}}
<p>Build a query set by POSTing to <code>/api/tasks</code>; this page lists
the available resources. Results are retrieved from the comparison
permalink returned at submission.</p>
<h2>Datasets ({{len .Datasets}})</h2>
<table>
<tr><th>Name</th><th>Kind</th><th>Description</th><th>Suggested reference nodes</th></tr>
{{range .Datasets}}<tr><td><a href="/api/datasets/{{.Name}}">{{.Name}}</a></td><td>{{.Kind}}</td><td>{{.Description}}</td><td>{{range .SuggestedSources}}<code>{{.}}</code> {{end}}</td></tr>
{{end}}</table>
<h2>Algorithms ({{len .Algorithms}})</h2>
<table>
<tr><th>Name</th><th>Needs reference node</th><th>Needs target node</th><th>Description</th></tr>
{{range .Algorithms}}<tr><td><code>{{.Name}}</code></td><td>{{if .NeedsSource}}yes{{else}}no{{end}}</td><td>{{if .NeedsTarget}}yes{{else}}no{{end}}</td><td>{{.Description}}</td></tr>
{{end}}</table>
</body></html>{{end}}

{{define "compare"}}{{template "layout_head" .}}
{{if not .Done}}<meta http-equiv="refresh" content="1">
<p>Computation in progress; this page refreshes automatically.</p>{{end}}
<p>Comparison id: <code>{{.ComparisonID}}</code></p>
{{range .Tasks}}
<h2>{{.Task.Algorithm}} on {{.Task.Dataset}} <span class="state-{{.Task.State}}">[{{.Task.State}}]</span></h2>
<p>Parameters: <code>{{.Task.Params}}</code>{{with .Task.Error}} — error: {{.}}{{end}}</p>
{{if .Result}}<table>
<tr><th>#</th><th>Node</th><th>Score</th></tr>
{{range $i, $e := .Result.Top}}{{if lt $i 10}}<tr><td>{{inc $i}}</td><td>{{$e.Label}}</td><td>{{printf "%.6g" $e.Score}}</td></tr>{{end}}{{end}}
</table>{{end}}
{{end}}
</body></html>{{end}}

{{define "instructions"}}{{template "layout_head" .}}
<h2>Supported dataset formats</h2>
<p>Upload with <code>POST /api/datasets/{name}</code> (raw file body,
optional <code>?format=</code> override). Supported formats:</p>
<table>
<tr><th>Format</th><th>Extension</th><th>Description</th></tr>
<tr><td><code>edgelist</code></td><td>.csv</td><td>One edge per line: <code>source,target</code> (comma, tab or space separated; Gephi CSV convention).</td></tr>
<tr><td><code>pajek</code></td><td>.net</td><td>Pajek NET: <code>*Vertices n</code>, vertex declarations, then an <code>*Arcs</code> section of 1-based id pairs.</td></tr>
<tr><td><code>asd</code></td><td>.asd</td><td>Header <code>N M</code> followed by exactly M lines of 0-based <code>src dst</code> pairs.</td></tr>
</table>
<h2>Submitting a query set</h2>
<pre><code>POST /api/tasks
{"tasks": [
  {"dataset": "enwiki-2018", "algorithm": "cyclerank",
   "params": {"source": "Fake news", "k": 3, "scoring": "exp"}},
  {"dataset": "enwiki-2018", "algorithm": "pagerank",
   "params": {"alpha": 0.3}},
  {"dataset": "enwiki-2018", "algorithm": "ppr",
   "params": {"source": "Fake news", "alpha": 0.3}}
]}</code></pre>
<h2>Target-node queries</h2>
<p>The bidirectional engines answer the reverse question — who is
relevant <em>to</em> a node. <code>ppr-target</code> ranks every node by
its Personalized-PageRank relevance to <code>target</code>;
<code>bippr-pair</code> estimates a single source→target score without
touching most of the graph:</p>
<pre><code>POST /api/tasks
{"tasks": [
  {"dataset": "enwiki-2018", "algorithm": "ppr-target",
   "params": {"target": "Freddie Mercury", "alpha": 0.85, "rmax": 1e-4}},
  {"dataset": "enwiki-2018", "algorithm": "bippr-pair",
   "params": {"source": "Brian May", "target": "Freddie Mercury", "walks": 10000}},
  {"dataset": "enwiki-2018", "algorithm": "bippr-pair",
   "params": {"source": "Brian May", "target": "Freddie Mercury",
              "eps": 1e-6, "workers": 8}}
]}</code></pre>
<p>Repeated queries against the same <code>(dataset, target, alpha,
rmax)</code> reuse a cached reverse-push index, so only the first query
pays the push cost — and indexes are persisted in the datastore, so
even a restarted server serves them from disk instead of recomputing
(<code>GET /api/status</code> reports memory hits, disk hits and misses).
Instead of a flat <code>walks</code> count,
<code>eps</code> requests an additive error and derives the walk count
from it; <code>workers</code> shards the walks across a bounded pool —
estimates are bit-identical for every pool size. The repository's
<code>docs/API.md</code> documents every task parameter.</p>
<h2>Batched queries</h2>
<p>A <code>queries</code> array submits many queries against one dataset
as a <em>single</em> batch task: the graph is loaded once, reverse-push
indexes are shared across subqueries, and
<code>GET /api/tasks/{id}</code> reports per-query progress
(<code>query_states</code>, <code>queries_done</code>) with one result
per subquery. Each entry may name its own <code>algorithm</code> or
inherit the top-level default:</p>
<pre><code>POST /api/tasks
{"dataset": "enwiki-2018", "algorithm": "bippr-pair", "parallelism": 4,
 "queries": [
   {"params": {"source": "Brian May", "target": "Freddie Mercury"}},
   {"params": {"source": "Brian May", "target": "Queen (band)", "walk_reuse": true}},
   {"algorithm": "ppr-target", "params": {"target": "Queen (band)"}}
]}</code></pre>
<p>A top-level <code>parallelism</code> fans the batch's independent
subqueries across a bounded pool (0 = one worker per CPU, capped by the
batch size) — results are bit-identical at every value. Per-query
<code>walk_reuse</code> lets repeated <code>bippr-pair</code> queries
from one source re-weight recorded walk endpoints for new targets
instead of re-walking (<code>GET /api/status</code> reports
<code>endpoint_cache</code> hits, misses and walks avoided).
The response carries a <code>comparison_id</code>; retrieve results at
<code>/api/compare/{id}</code> or view them at <code>/compare/{id}</code>.</p>
<h2>Request classes and deadlines</h2>
<p>Every task (and a top-level batch) accepts a <code>class</code>:
<code>"interactive"</code> marks latency-sensitive traffic — it fills
cheap parameter presets into unset fields (looser <code>rmax</code>,
fewer <code>walks</code>), applies a strict default deadline, and is
subject to admission control: an overloaded server fast-rejects it
with <code>429 Too Many Requests</code> and a <code>Retry-After</code>
header <em>before</em> loading any graph. <code>"batch"</code> marks
throughput traffic — queued on a dedicated executor pool, never shed,
parameters untouched. Omitting the class keeps historical behavior
bit-identical (plain tasks route interactive without presets;
<code>queries</code> submissions route batch).
A <code>timeout_ms</code> field tightens the execution deadline below
the server's limit; a task cancelled mid-walk or mid-push fails with
an error naming the phase, keeping the phase traces it completed.
Submitted tasks echo the scheduler's <code>estimated_cost</code> — the
Lofgren balance-point cost estimate admission control prices the
request with.</p>
<h2>Observability</h2>
<p>Done tasks report <code>wait_ms</code>/<code>run_ms</code> and a
per-phase <code>phases</code> tree in their result;
<code>GET /metrics</code> serves a Prometheus scrape of every component
(engine counters, cache tiers, scheduler latencies). The repository's
<code>docs/API.md</code> lists every metric family.</p>
</body></html>{{end}}
`))

type homeData struct {
	Title      string
	Datasets   []datasetInfo
	Algorithms []algorithmInfo
}

func (s *Server) handleHome(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	data := homeData{Title: "Task builder"}
	for _, d := range s.catalog.All() {
		data.Datasets = append(data.Datasets, datasetInfo{
			Name: d.Name, Kind: d.Kind, Description: d.Description,
			SuggestedSources: d.SuggestedSources,
		})
	}
	s.mu.RLock()
	for name := range s.uploaded {
		data.Datasets = append(data.Datasets, datasetInfo{Name: name, Kind: "uploaded", Description: "user-uploaded dataset"})
	}
	s.mu.RUnlock()
	data.Algorithms = algorithmInfos(s.registry)
	s.render(w, "home", data)
}

type comparePageData struct {
	Title string
	compareResponse
}

func (s *Server) handleComparePage(w http.ResponseWriter, r *http.Request) {
	resp, err := s.compareView(r.PathValue("id"))
	if err != nil {
		http.NotFound(w, r)
		return
	}
	s.render(w, "compare", comparePageData{Title: "Comparison", compareResponse: resp})
}

func (s *Server) handleInstructions(w http.ResponseWriter, r *http.Request) {
	s.render(w, "instructions", struct{ Title string }{"Instructions"})
}

func (s *Server) render(w http.ResponseWriter, name string, data any) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := uiTemplates.ExecuteTemplate(w, name, data); err != nil {
		// The header is already written; all we can do is close out.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
