package server

import (
	"context"
	"sync"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/bippr"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/obs"
)

// PrewarmStatus is the startup pre-warm task's progress snapshot, the
// "prewarm" row of /api/status. States: "disabled" (Config.PreWarm
// off), "running", "done", "cancelled" (the server was closed
// mid-warm).
type PrewarmStatus struct {
	State string `json:"state"`
	// DatasetsTotal / DatasetsDone count catalog datasets with
	// suggested reference nodes.
	DatasetsTotal int `json:"datasets_total"`
	DatasetsDone  int `json:"datasets_done"`
	// NodesTotal / NodesDone count suggested reference nodes; each
	// warms one reverse-push index and one walk-endpoint recording.
	NodesTotal int `json:"nodes_total"`
	NodesDone  int `json:"nodes_done"`
	// IndexesWarm counts indexes found already warm (persisted by a
	// previous process, or raced into the cache by an early query);
	// IndexesComputed counts reverse pushes the pre-warm paid — and
	// persisted, so the NEXT restart's pre-warm only deserializes.
	IndexesWarm     int `json:"indexes_warm"`
	IndexesComputed int `json:"indexes_computed"`
	// EndpointsWarm / EndpointsRecorded are the same split for
	// walk-endpoint recordings.
	EndpointsWarm     int `json:"endpoints_warm"`
	EndpointsRecorded int `json:"endpoints_recorded"`
	// Errors counts nodes that failed to warm (load failures,
	// unresolvable labels); each is skipped, never fatal.
	Errors int `json:"errors"`
	// LearnedKeys / LearnedWarmed / LearnedErrors report the
	// traffic-learned second phase: heavy-hitter keys considered,
	// artifacts warmed (and pinned against the sweeper), keys skipped
	// (unparseable, vanished dataset, unresolvable label).
	LearnedKeys   int `json:"learned_keys"`
	LearnedWarmed int `json:"learned_warmed"`
	LearnedErrors int `json:"learned_errors"`
}

// prewarmState backs the "prewarm" status row with obs metrics: the
// counters ARE the registry series the /metrics scrape exports, and
// snapshot() assembles the legacy JSON shape from the same values —
// the two views cannot drift. Only the state string stays a plain
// mutex-guarded field (Prometheus has no string samples).
type prewarmState struct {
	mu    sync.Mutex
	state string

	datasetsTotal, nodesTotal *obs.Gauge
	datasetsDone, nodesDone   *obs.Counter
	indexesWarm, indexesComputed,
	endpointsWarm, endpointsRecorded *obs.Counter
	errors *obs.Counter

	learnedKeys                  *obs.Gauge
	learnedWarmed, learnedErrors *obs.Counter
}

func (p *prewarmState) init(enabled bool, reg *obs.Registry) {
	p.datasetsTotal = reg.Gauge("cyclerank_prewarm_datasets",
		"Catalog datasets the startup pre-warm covers.")
	p.nodesTotal = reg.Gauge("cyclerank_prewarm_nodes",
		"Suggested reference nodes the startup pre-warm covers.")
	p.datasetsDone = reg.Counter("cyclerank_prewarm_datasets_done_total",
		"Datasets the pre-warm finished (including skipped ones).")
	p.nodesDone = reg.Counter("cyclerank_prewarm_nodes_done_total",
		"Reference nodes the pre-warm finished (including failed ones).")
	p.indexesWarm = reg.Counter("cyclerank_prewarm_indexes_total",
		"Reverse-push indexes touched by the pre-warm, by outcome.", "outcome", "warm")
	p.indexesComputed = reg.Counter("cyclerank_prewarm_indexes_total",
		"Reverse-push indexes touched by the pre-warm, by outcome.", "outcome", "computed")
	p.endpointsWarm = reg.Counter("cyclerank_prewarm_endpoints_total",
		"Walk-endpoint recordings touched by the pre-warm, by outcome.", "outcome", "warm")
	p.endpointsRecorded = reg.Counter("cyclerank_prewarm_endpoints_total",
		"Walk-endpoint recordings touched by the pre-warm, by outcome.", "outcome", "recorded")
	p.errors = reg.Counter("cyclerank_prewarm_errors_total",
		"Nodes that failed to warm (load failures, unresolvable labels).")
	p.learnedKeys = reg.Gauge("cyclerank_prewarm_learned_keys",
		"Traffic-learned heavy-hitter keys the pre-warm considered.")
	p.learnedWarmed = reg.Counter("cyclerank_prewarm_learned_warmed_total",
		"Artifacts warmed (and pinned) by the traffic-learned pre-warm phase.")
	p.learnedErrors = reg.Counter("cyclerank_prewarm_learned_errors_total",
		"Traffic-learned keys skipped (unparseable, vanished dataset, unresolvable label).")
	p.mu.Lock()
	defer p.mu.Unlock()
	if enabled {
		p.state = "running"
	} else {
		p.state = "disabled"
	}
}

func (p *prewarmState) setTotals(datasets, nodes int) {
	p.datasetsTotal.Set(float64(datasets))
	p.nodesTotal.Set(float64(nodes))
}

func (p *prewarmState) setState(state string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.state = state
}

func (p *prewarmState) snapshot() PrewarmStatus {
	p.mu.Lock()
	state := p.state
	p.mu.Unlock()
	return PrewarmStatus{
		State:             state,
		DatasetsTotal:     int(p.datasetsTotal.Value()),
		DatasetsDone:      int(p.datasetsDone.Value()),
		NodesTotal:        int(p.nodesTotal.Value()),
		NodesDone:         int(p.nodesDone.Value()),
		IndexesWarm:       int(p.indexesWarm.Value()),
		IndexesComputed:   int(p.indexesComputed.Value()),
		EndpointsWarm:     int(p.endpointsWarm.Value()),
		EndpointsRecorded: int(p.endpointsRecorded.Value()),
		Errors:            int(p.errors.Value()),
		LearnedKeys:       int(p.learnedKeys.Value()),
		LearnedWarmed:     int(p.learnedWarmed.Value()),
		LearnedErrors:     int(p.learnedErrors.Value()),
	}
}

// runPrewarm is the startup pre-warm task: for every catalog dataset
// with suggested reference nodes it warms, per node, the reverse-push
// target index and the walk-endpoint recording at default query
// parameters — exactly the keys a default target or walk-reuse pair
// query will look up. Warm artifacts persisted by a previous process
// deserialize; cold ones are computed once and persisted through the
// caches' disk tiers, so the work compounds across restarts. The
// graph loads share the scheduler's dataset cache, so pre-warmed
// memory-tier entries are keyed by the same *Graph pointer later
// queries use.
//
// Cancellation (server Close) is honored between nodes and inside
// every push and walk pass; artifact writes are atomic, so a cancel
// mid-warm leaves no partial files.
func (s *Server) runPrewarm(ctx context.Context) {
	defer s.lifeWG.Done()
	p := bippr.Params{}.WithDefaults()

	type job struct {
		dataset string
		sources []string
	}
	var jobs []job
	nodes := 0
	for _, d := range s.catalog.All() {
		if len(d.SuggestedSources) > 0 {
			jobs = append(jobs, job{dataset: d.Name, sources: d.SuggestedSources})
			nodes += len(d.SuggestedSources)
		}
	}
	s.prewarm.setTotals(len(jobs), nodes)

	cancelled := func() bool { return ctx.Err() != nil }
	for _, j := range jobs {
		if cancelled() {
			s.prewarm.setState("cancelled")
			return
		}
		g, err := s.scheduler.LoadGraph(j.dataset)
		if err != nil {
			s.prewarm.errors.Add(int64(len(j.sources)))
			s.prewarm.nodesDone.Add(int64(len(j.sources)))
			s.prewarm.datasetsDone.Inc()
			continue
		}
		for _, label := range j.sources {
			if cancelled() {
				s.prewarm.setState("cancelled")
				return
			}
			node, ok := g.NodeByLabel(label)
			if !ok {
				s.prewarm.errors.Inc()
				s.prewarm.nodesDone.Inc()
				continue
			}
			_, tier, err := s.indexStore.GetOrCompute(ctx, g, node, p.Alpha, p.RMax,
				func() (*bippr.TargetIndex, error) {
					return bippr.ReversePush(ctx, g, node, p.Alpha, p.RMax)
				})
			_, warm, eErr := s.endpoints.GetOrRecord(ctx, g, node, p,
				func() (*bippr.EndpointSet, error) {
					w := bippr.NewWalkEstimator(g, p.Alpha, p.Seed, p.MaxSteps)
					return w.Endpoints(ctx, node, p.Walks, p.Workers)
				})
			s.prewarm.nodesDone.Inc()
			if err != nil || eErr != nil {
				s.prewarm.errors.Inc()
			}
			if err == nil {
				if tier != bippr.TierComputed {
					s.prewarm.indexesWarm.Inc()
				} else {
					s.prewarm.indexesComputed.Inc()
				}
			}
			if eErr == nil {
				if warm {
					s.prewarm.endpointsWarm.Inc()
				} else {
					s.prewarm.endpointsRecorded.Inc()
				}
			}
		}
		s.prewarm.datasetsDone.Inc()
	}
	// Second phase: warm (and pin) what the previous boot's observed
	// traffic demanded most, on top of the catalog's suggestions.
	s.learnedPrewarm(ctx)
	if cancelled() {
		s.prewarm.setState("cancelled")
	} else {
		s.prewarm.setState("done")
	}
}

// GCStatus is the artifact sweeper's snapshot, the "artifact_gc" row
// of /api/status. CapBytes 0 reports the sweeper as disabled.
type GCStatus struct {
	CapBytes int64 `json:"cap_bytes"`
	// Sweeps counts completed sweep passes.
	Sweeps int64 `json:"sweeps"`
	// LastSweep is the most recent pass's outcome: artifacts
	// remaining and reaped.
	LastSweep datastore.SweepStats `json:"last_sweep"`
}

// gcState backs the "artifact_gc" status row with obs metrics, like
// prewarmState: the sweep counter and residency gauges live in the
// server registry, and the JSON snapshot reads the same values. The
// cumulative reaped counters outlive LastSweep, which only keeps the
// most recent pass.
type gcState struct {
	mu   sync.Mutex
	last datastore.SweepStats

	capBytes       *obs.Gauge
	sweeps         *obs.Counter
	reapedFiles    *obs.Counter
	reapedBytes    *obs.Counter
	remainingFiles *obs.Gauge
	remainingBytes *obs.Gauge
}

func (g *gcState) init(capBytes int64, reg *obs.Registry) {
	g.capBytes = reg.Gauge("cyclerank_artifact_gc_cap_bytes",
		"Size cap on persisted derived artifacts (0 = sweeper disabled).")
	g.sweeps = reg.Counter("cyclerank_artifact_gc_sweeps_total",
		"Completed artifact sweep passes.")
	g.reapedFiles = reg.Counter("cyclerank_artifact_gc_reaped_files_total",
		"Artifacts removed by the sweeper since startup.")
	g.reapedBytes = reg.Counter("cyclerank_artifact_gc_reaped_bytes_total",
		"Bytes reclaimed by the sweeper since startup.")
	g.remainingFiles = reg.Gauge("cyclerank_artifact_gc_remaining_files",
		"Artifacts remaining after the most recent sweep.")
	g.remainingBytes = reg.Gauge("cyclerank_artifact_gc_remaining_bytes",
		"Artifact bytes remaining after the most recent sweep.")
	g.capBytes.Set(float64(capBytes))
}

func (g *gcState) record(st datastore.SweepStats) {
	g.sweeps.Inc()
	g.reapedFiles.Add(int64(st.Reaped))
	g.reapedBytes.Add(st.ReapedBytes)
	g.remainingFiles.Set(float64(st.Files))
	g.remainingBytes.Set(float64(st.Bytes))
	g.mu.Lock()
	g.last = st
	g.mu.Unlock()
}

func (g *gcState) snapshot() GCStatus {
	g.mu.Lock()
	last := g.last
	g.mu.Unlock()
	return GCStatus{
		CapBytes:  int64(g.capBytes.Value()),
		Sweeps:    g.sweeps.Value(),
		LastSweep: last,
	}
}

// artifactSweepInterval paces the background GC: one pass at startup
// (reclaiming whatever a previous process left over the cap), then
// one per interval. Sweeps are cheap — one readdir walk per artifact
// kind — but there is no reason to run them hot. A variable so tests
// can tighten it.
var artifactSweepInterval = time.Minute

// runSweeper enforces the artifact caps (total and per-kind) in the
// background, exempting whatever the learned pre-warm pinned — the
// pin set is re-read every pass, so artifacts pinned after startup
// gain protection on the next tick.
func (s *Server) runSweeper(ctx context.Context) {
	defer s.lifeWG.Done()
	ticker := time.NewTicker(artifactSweepInterval)
	defer ticker.Stop()
	for {
		pol := s.sweepPolicy
		pol.Pinned = s.trafficState.pinnedPaths()
		// Sweep failures are not fatal: the next tick retries, and the
		// stats keep reporting the last successful pass.
		if st, err := s.store.SweepArtifactsPolicy(pol); err == nil {
			s.gc.record(st)
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}
