package server

import (
	"context"
	"sync"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/bippr"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
)

// PrewarmStatus is the startup pre-warm task's progress snapshot, the
// "prewarm" row of /api/status. States: "disabled" (Config.PreWarm
// off), "running", "done", "cancelled" (the server was closed
// mid-warm).
type PrewarmStatus struct {
	State string `json:"state"`
	// DatasetsTotal / DatasetsDone count catalog datasets with
	// suggested reference nodes.
	DatasetsTotal int `json:"datasets_total"`
	DatasetsDone  int `json:"datasets_done"`
	// NodesTotal / NodesDone count suggested reference nodes; each
	// warms one reverse-push index and one walk-endpoint recording.
	NodesTotal int `json:"nodes_total"`
	NodesDone  int `json:"nodes_done"`
	// IndexesWarm counts indexes found already warm (persisted by a
	// previous process, or raced into the cache by an early query);
	// IndexesComputed counts reverse pushes the pre-warm paid — and
	// persisted, so the NEXT restart's pre-warm only deserializes.
	IndexesWarm     int `json:"indexes_warm"`
	IndexesComputed int `json:"indexes_computed"`
	// EndpointsWarm / EndpointsRecorded are the same split for
	// walk-endpoint recordings.
	EndpointsWarm     int `json:"endpoints_warm"`
	EndpointsRecorded int `json:"endpoints_recorded"`
	// Errors counts nodes that failed to warm (load failures,
	// unresolvable labels); each is skipped, never fatal.
	Errors int `json:"errors"`
}

// prewarmState guards the status snapshot.
type prewarmState struct {
	mu sync.Mutex
	st PrewarmStatus
}

func (p *prewarmState) init(enabled bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if enabled {
		p.st.State = "running"
	} else {
		p.st.State = "disabled"
	}
}

func (p *prewarmState) setTotals(datasets, nodes int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.st.DatasetsTotal, p.st.NodesTotal = datasets, nodes
}

func (p *prewarmState) update(fn func(*PrewarmStatus)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fn(&p.st)
}

func (p *prewarmState) snapshot() PrewarmStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st
}

// runPrewarm is the startup pre-warm task: for every catalog dataset
// with suggested reference nodes it warms, per node, the reverse-push
// target index and the walk-endpoint recording at default query
// parameters — exactly the keys a default target or walk-reuse pair
// query will look up. Warm artifacts persisted by a previous process
// deserialize; cold ones are computed once and persisted through the
// caches' disk tiers, so the work compounds across restarts. The
// graph loads share the scheduler's dataset cache, so pre-warmed
// memory-tier entries are keyed by the same *Graph pointer later
// queries use.
//
// Cancellation (server Close) is honored between nodes and inside
// every push and walk pass; artifact writes are atomic, so a cancel
// mid-warm leaves no partial files.
func (s *Server) runPrewarm(ctx context.Context) {
	defer s.lifeWG.Done()
	p := bippr.Params{}.WithDefaults()

	type job struct {
		dataset string
		sources []string
	}
	var jobs []job
	nodes := 0
	for _, d := range s.catalog.All() {
		if len(d.SuggestedSources) > 0 {
			jobs = append(jobs, job{dataset: d.Name, sources: d.SuggestedSources})
			nodes += len(d.SuggestedSources)
		}
	}
	s.prewarm.setTotals(len(jobs), nodes)

	cancelled := func() bool { return ctx.Err() != nil }
	for _, j := range jobs {
		if cancelled() {
			s.prewarm.update(func(st *PrewarmStatus) { st.State = "cancelled" })
			return
		}
		g, err := s.scheduler.LoadGraph(j.dataset)
		if err != nil {
			s.prewarm.update(func(st *PrewarmStatus) {
				st.Errors += len(j.sources)
				st.NodesDone += len(j.sources)
				st.DatasetsDone++
			})
			continue
		}
		for _, label := range j.sources {
			if cancelled() {
				s.prewarm.update(func(st *PrewarmStatus) { st.State = "cancelled" })
				return
			}
			node, ok := g.NodeByLabel(label)
			if !ok {
				s.prewarm.update(func(st *PrewarmStatus) { st.Errors++; st.NodesDone++ })
				continue
			}
			failed := false
			_, tier, err := s.indexStore.GetOrCompute(ctx, g, node, p.Alpha, p.RMax,
				func() (*bippr.TargetIndex, error) {
					return bippr.ReversePush(ctx, g, node, p.Alpha, p.RMax)
				})
			if err != nil {
				failed = true
			}
			_, warm, eErr := s.endpoints.GetOrRecord(ctx, g, node, p,
				func() (*bippr.EndpointSet, error) {
					w := bippr.NewWalkEstimator(g, p.Alpha, p.Seed, p.MaxSteps)
					return w.Endpoints(ctx, node, p.Walks, p.Workers)
				})
			if eErr != nil {
				failed = true
			}
			s.prewarm.update(func(st *PrewarmStatus) {
				st.NodesDone++
				if failed {
					st.Errors++
				}
				if err == nil {
					if tier != bippr.TierComputed {
						st.IndexesWarm++
					} else {
						st.IndexesComputed++
					}
				}
				if eErr == nil {
					if warm {
						st.EndpointsWarm++
					} else {
						st.EndpointsRecorded++
					}
				}
			})
		}
		s.prewarm.update(func(st *PrewarmStatus) { st.DatasetsDone++ })
	}
	s.prewarm.update(func(st *PrewarmStatus) {
		if cancelled() {
			st.State = "cancelled"
		} else {
			st.State = "done"
		}
	})
}

// GCStatus is the artifact sweeper's snapshot, the "artifact_gc" row
// of /api/status. CapBytes 0 reports the sweeper as disabled.
type GCStatus struct {
	CapBytes int64 `json:"cap_bytes"`
	// Sweeps counts completed sweep passes.
	Sweeps int64 `json:"sweeps"`
	// LastSweep is the most recent pass's outcome: artifacts
	// remaining and reaped.
	LastSweep datastore.SweepStats `json:"last_sweep"`
}

type gcState struct {
	mu sync.Mutex
	st GCStatus
}

func (g *gcState) init(capBytes int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.st.CapBytes = capBytes
}

func (g *gcState) record(st datastore.SweepStats) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.st.Sweeps++
	g.st.LastSweep = st
}

func (g *gcState) snapshot() GCStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.st
}

// artifactSweepInterval paces the background GC: one pass at startup
// (reclaiming whatever a previous process left over the cap), then
// one per interval. Sweeps are cheap — one readdir walk per artifact
// kind — but there is no reason to run them hot. A variable so tests
// can tighten it.
var artifactSweepInterval = time.Minute

// runSweeper enforces Config.ArtifactCapBytes in the background.
func (s *Server) runSweeper(ctx context.Context, capBytes int64) {
	defer s.lifeWG.Done()
	ticker := time.NewTicker(artifactSweepInterval)
	defer ticker.Stop()
	for {
		// Sweep failures are not fatal: the next tick retries, and the
		// stats keep reporting the last successful pass.
		if st, err := s.store.SweepArtifacts(capBytes); err == nil {
			s.gc.record(st)
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}
