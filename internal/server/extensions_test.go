package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

func doReq(t *testing.T, method, url string, body string) *http.Response {
	t.Helper()
	var r *http.Request
	var err error
	if body == "" {
		r, err = http.NewRequest(method, url, nil)
	} else {
		r, err = http.NewRequest(method, url, strings.NewReader(body))
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(r)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestDeleteDataset(t *testing.T) {
	_, ts := newTestServer(t)
	// Upload then delete.
	resp, err := http.Post(ts.URL+"/api/datasets/todelete", "text/csv", strings.NewReader("a,b\nb,a\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp = doReq(t, http.MethodDelete, ts.URL+"/api/datasets/todelete", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	// Gone from listings and stats.
	resp = doReq(t, http.MethodGet, ts.URL+"/api/datasets/todelete", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("deleted dataset still resolvable: %d", resp.StatusCode)
	}
	// Deleting catalog datasets is forbidden; unknown names 404.
	resp = doReq(t, http.MethodDelete, ts.URL+"/api/datasets/ring-1k", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("catalog delete status %d", resp.StatusCode)
	}
	resp = doReq(t, http.MethodDelete, ts.URL+"/api/datasets/never-existed", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown delete status %d", resp.StatusCode)
	}
}

func TestCancelTaskEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"tasks": [{"dataset": "complete-50", "algorithm": "pagerank"}]}`
	resp, err := http.Post(ts.URL+"/api/tasks", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()

	// Cancelling (whether still pending or already done) returns the
	// current snapshot; unknown ids 404.
	resp = doReq(t, http.MethodDelete, ts.URL+"/api/tasks/"+sub.TaskIDs[0], "")
	var tv taskView
	json.NewDecoder(resp.Body).Decode(&tv)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	if tv.Task.ID != sub.TaskIDs[0] {
		t.Errorf("cancel returned wrong task %q", tv.Task.ID)
	}
	resp = doReq(t, http.MethodDelete, ts.URL+"/api/tasks/ghost", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown cancel status %d", resp.StatusCode)
	}
}

func TestAgreementEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"tasks": [
		{"dataset": "complete-50", "algorithm": "pagerank"},
		{"dataset": "complete-50", "algorithm": "cheirank"},
		{"dataset": "complete-50", "algorithm": "2drank"}
	]}`
	resp, err := http.Post(ts.URL+"/api/tasks", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		var cmp compareResponse
		getJSON(t, ts.URL+"/api/compare/"+sub.ComparisonID, &cmp)
		if cmp.Done || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	var ag agreementResponse
	r := getJSON(t, ts.URL+"/api/compare/"+sub.ComparisonID+"/agreement?k=5", &ag)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("agreement status %d", r.StatusCode)
	}
	if len(ag.Pairs) != 3 { // C(3,2)
		t.Fatalf("pairs = %d", len(ag.Pairs))
	}
	for _, p := range ag.Pairs {
		if p.Jaccard < 0 || p.Jaccard > 1 || p.RBO < 0 || p.RBO > 1 {
			t.Errorf("metrics out of bounds: %+v", p)
		}
		if len(p.OverlapCurve) == 0 {
			t.Error("missing overlap curve")
		}
	}
	// On the symmetric complete digraph PageRank and CheiRank agree
	// perfectly.
	if ag.Pairs[0].Jaccard != 1 {
		t.Errorf("pagerank vs cheirank on complete digraph: jaccard = %v", ag.Pairs[0].Jaccard)
	}

	// Bad depth.
	r = getJSON(t, ts.URL+"/api/compare/"+sub.ComparisonID+"/agreement?k=zero", nil)
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad k status %d", r.StatusCode)
	}
	// Unknown query set.
	r = getJSON(t, ts.URL+"/api/compare/ghost/agreement", nil)
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown set status %d", r.StatusCode)
	}
}

func TestAgreementNeedsTwoCompletedTasks(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"tasks": [{"dataset": "complete-50", "algorithm": "pagerank"}]}`
	resp, err := http.Post(ts.URL+"/api/tasks", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var cmp compareResponse
		getJSON(t, ts.URL+"/api/compare/"+sub.ComparisonID, &cmp)
		if cmp.Done || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	r := getJSON(t, ts.URL+"/api/compare/"+sub.ComparisonID+"/agreement", nil)
	if r.StatusCode != http.StatusConflict {
		t.Errorf("single-task agreement status %d", r.StatusCode)
	}
}

func TestStatusEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var st statusResponse
	r := getJSON(t, ts.URL+"/api/status", &st)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	if st.Datasets != 2 || st.Algorithms != 11 {
		t.Errorf("status = %+v", st)
	}
	if st.Scheduler.Workers != 2 {
		t.Errorf("workers = %d", st.Scheduler.Workers)
	}
	// After running a task, done count reflects it.
	body := `{"tasks": [{"dataset": "complete-50", "algorithm": "pagerank"}]}`
	resp, err := http.Post(ts.URL+"/api/tasks", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, ts.URL+"/api/status", &st)
		if st.Scheduler.Done == 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Scheduler.Done != 1 {
		t.Errorf("done = %d after task completion", st.Scheduler.Done)
	}
}

func TestEgoNetEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var ego egoResponse
	r := getJSON(t, ts.URL+"/api/datasets/ring-1k/ego?node=5&radius=2", &ego)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("ego status %d", r.StatusCode)
	}
	// On a directed ring, radius 2 both ways covers 5 nodes / 4 edges.
	if len(ego.Nodes) != 5 || len(ego.Edges) != 4 {
		t.Errorf("ego nodes=%d edges=%d, want 5/4", len(ego.Nodes), len(ego.Edges))
	}
	if ego.Nodes[0] != "5" {
		t.Errorf("center not first: %v", ego.Nodes[0])
	}

	for url, want := range map[string]int{
		"/api/datasets/ghost/ego?node=5":                http.StatusNotFound,
		"/api/datasets/ring-1k/ego?node=zzz":            http.StatusBadRequest,
		"/api/datasets/ring-1k/ego?node=5&radius=9":     http.StatusBadRequest,
		"/api/datasets/complete-50/ego?node=0&radius=0": http.StatusOK,
	} {
		r := getJSON(t, ts.URL+url, nil)
		if r.StatusCode != want {
			t.Errorf("%s: status %d, want %d", url, r.StatusCode, want)
		}
	}
}

func TestCyclesEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	// complete-50: plenty of short cycles through node "0".
	resp := doReq(t, http.MethodPost, ts.URL+"/api/cycles",
		`{"dataset": "complete-50", "source": "0", "k": 3, "limit": 5}`)
	var cy cyclesResponse
	if err := json.NewDecoder(resp.Body).Decode(&cy); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cycles status %d", resp.StatusCode)
	}
	if len(cy.Cycles) != 5 {
		t.Errorf("listed %d cycles, want 5 (limit)", len(cy.Cycles))
	}
	if cy.Total <= 5 {
		t.Errorf("total = %d, want full count", cy.Total)
	}
	// Shortest first; closed sequence (first == last label).
	first := cy.Cycles[0]
	if first.Length != 2 {
		t.Errorf("first cycle length %d", first.Length)
	}
	if first.Nodes[0] != first.Nodes[len(first.Nodes)-1] {
		t.Errorf("cycle not closed: %v", first.Nodes)
	}

	// Drill-down through a specific node.
	resp = doReq(t, http.MethodPost, ts.URL+"/api/cycles",
		`{"dataset": "complete-50", "source": "0", "node": "7", "k": 2, "limit": 10}`)
	cy = cyclesResponse{}
	json.NewDecoder(resp.Body).Decode(&cy)
	resp.Body.Close()
	if len(cy.Cycles) != 1 {
		t.Errorf("drill-down found %d cycles, want exactly the 0<->7 pair", len(cy.Cycles))
	}

	// Errors.
	for body, wantStatus := range map[string]int{
		`{`:                                   http.StatusBadRequest,
		`{"dataset": "ghost", "source": "0"}`: http.StatusNotFound,
		`{"dataset": "complete-50", "source": "nobody"}`:              http.StatusBadRequest,
		`{"dataset": "complete-50", "source": "0", "node": "nobody"}`: http.StatusBadRequest,
	} {
		resp := doReq(t, http.MethodPost, ts.URL+"/api/cycles", body)
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("body %s: status %d, want %d", body, resp.StatusCode, wantStatus)
		}
	}
}
