// Package server implements the platform's API gateway and Web UI:
// the entry point that mediates between users and the computational
// nodes (Figure 1 of the demo paper).
//
// The JSON API exposes:
//
//	GET  /api/algorithms          available algorithms
//	GET  /api/datasets            pre-loaded + uploaded datasets
//	GET  /api/datasets/{name}     structural stats for one dataset
//	POST /api/datasets/{name}     upload a dataset (edgelist/pajek/asd)
//	POST /api/tasks               submit a query set
//	GET  /api/tasks/{id}          poll one task (status + result)
//	GET  /api/compare/{id}        poll a whole query set by permalink
//
// The HTML UI (/, /compare/{id}, /instructions) renders the same
// information server-side.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/bippr"
	"github.com/cyclerank/cyclerank-go/internal/datasets"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/formats"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/obs"
	"github.com/cyclerank/cyclerank-go/internal/task"
	"github.com/cyclerank/cyclerank-go/internal/traffic"
)

// maxUploadBytes caps dataset uploads (64 MiB).
const maxUploadBytes = 64 << 20

// Server is the API gateway. Create one with New and mount it as an
// http.Handler.
type Server struct {
	registry   *algo.Registry
	catalog    *datasets.Catalog
	store      *datastore.Store
	scheduler  *task.Scheduler
	indexStore bippr.IndexStore
	endpoints  *bippr.EndpointCache
	mux        *http.ServeMux

	mu       sync.RWMutex
	uploaded map[string]bool // datasets living in the datastore

	// Cached artifact-tree usage for the status endpoint (see
	// artifactDiskUsage).
	usageMu sync.Mutex
	usageAt time.Time
	usage   artifactUsage

	// Background lifecycle work (startup pre-warm, artifact GC,
	// traffic-sketch persistence), cancelled by Close.
	lifeCancel context.CancelFunc
	lifeWG     sync.WaitGroup
	prewarm    prewarmState
	gc         gcState

	// traffic is the workload frequency sketch behind the learned
	// pre-warm (nil when disabled); trafficState tracks its
	// persistence and the artifact pins it produced.
	traffic      *traffic.Sketch
	trafficState trafficState
	sweepPolicy  datastore.SweepPolicy

	// reg holds the server's own metrics (prewarm, artifact GC); the
	// /metrics scrape merges it with every component registry (see
	// metricsRegistries).
	reg *obs.Registry
}

// Config configures a Server.
type Config struct {
	// Registry resolves algorithms. Nil (the default for deployments)
	// builds the built-in registry with its bidirectional estimator
	// backed by the server's persistent two-tier index store, so
	// reverse-push indexes survive restarts. Passing an explicit
	// registry (tests, custom algorithm sets) keeps whatever caching
	// its estimator was built with — the status endpoint's index-store
	// stats then only reflect the server's own store, which such a
	// registry does not use.
	Registry *algo.Registry
	// Catalog provides the pre-loaded datasets; required.
	Catalog *datasets.Catalog
	// Store persists uploads, results, logs and indexes; required.
	Store *datastore.Store
	// IndexStore overrides the target-index store (default: a
	// bippr.TieredStore over Store).
	IndexStore bippr.IndexStore
	// EndpointCache overrides the walk-endpoint cache behind queries
	// that set walk_reuse (default: a two-tier cache persisting
	// recordings through Store, so warm sources survive restarts).
	// Like IndexStore, it only reaches queries when Registry is nil —
	// an explicit registry keeps whatever caching its estimator was
	// built with, and the status endpoint then reports this cache as
	// idle.
	EndpointCache *bippr.EndpointCache
	// Workers sizes the interactive executor pool (default 2).
	Workers int
	// BatchWorkers sizes the batch-tier executor pool (default:
	// Workers), so queued batch comparisons cannot starve interactive
	// queries of executors — and vice versa.
	BatchWorkers int
	// Admission bounds the interactive tier: concurrency slots,
	// queue depth and estimated-cost backlog, each checked on the
	// submit fast path before any graph loads. Shed submissions
	// return 429 with a Retry-After header. The zero value disables
	// admission control (every submission is admitted, as before).
	Admission task.AdmissionConfig
	// TaskTimeout bounds a single task's execution; zero means no
	// limit. Public deployments should set it. Requests may tighten
	// (never loosen) it per task via the timeout_ms field.
	TaskTimeout time.Duration
	// TrafficTopK sizes the traffic sketch's heavy-hitter list — the
	// keys the learned pre-warm warms and pins on the next boot. 0
	// selects traffic.DefaultTopK; negative disables traffic
	// learning entirely (no sketch, no persistence, no learned
	// pre-warm).
	TrafficTopK int
	// TrafficHalfLife paces the sketch's time decay: every half-life
	// all counters (and the heavy-hitter table) halve, so a key must
	// keep being queried to stay hot and yesterday's burst ages out of
	// the pre-warm pin set instead of being pinned forever. 0 selects
	// DefaultTrafficHalfLife; negative disables decay (the pre-v2
	// behavior: counts accumulate for the sketch's lifetime).
	TrafficHalfLife time.Duration
	// PreWarm starts a background task at construction that loads
	// every catalog dataset with suggested reference nodes and warms
	// their reverse-push indexes and walk-endpoint recordings — from
	// disk when a previous process persisted them, computing and
	// persisting otherwise — so the first user query after a deploy
	// finds its caches hot. Progress is visible under "prewarm" in
	// /api/status; Close cancels the task mid-flight without leaving
	// partial artifacts (all writes are atomic).
	PreWarm bool
	// ArtifactCapBytes bounds the total size of persisted derived
	// artifacts (reverse-push indexes + endpoint recordings): a
	// background sweep reaps the least recently accessed artifacts
	// past the cap (see datastore.SweepArtifacts). Zero means
	// unlimited — no sweeper runs.
	ArtifactCapBytes int64
	// IndexCapBytes / EndpointCapBytes cap each artifact kind
	// individually, layered under ArtifactCapBytes, so one hot kind
	// cannot evict the other wholesale. Zero disables the per-kind
	// cap; either one (or ArtifactCapBytes) being set runs the
	// sweeper. Artifacts pinned by the learned pre-warm survive both
	// passes.
	IndexCapBytes    int64
	EndpointCapBytes int64
	// EnablePprof mounts net/http/pprof under /debug/pprof/ — CPU and
	// heap profiles over the same listener as the API. Off by default:
	// profiles expose internals a public deployment should not serve.
	EnablePprof bool
	// SlowQueryThreshold turns on the scheduler's slow-query log:
	// every task running at least this long emits one structured line
	// with its full phase breakdown. Zero disables it.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives the slow-query lines (default os.Stderr).
	SlowQueryLog io.Writer
}

// New builds the gateway and its scheduler.
func New(cfg Config) (*Server, error) {
	if cfg.Catalog == nil || cfg.Store == nil {
		return nil, fmt.Errorf("server: catalog and store are required")
	}
	if cfg.IndexStore == nil {
		cfg.IndexStore = bippr.NewTieredStore(bippr.DefaultCacheSize, cfg.Store)
	}
	if cfg.EndpointCache == nil {
		cfg.EndpointCache = bippr.NewTieredEndpointCache(bippr.DefaultEndpointCacheSize, cfg.Store)
	}
	if cfg.Registry == nil {
		cfg.Registry = algo.NewBuiltinRegistryWith(
			bippr.NewEstimatorWithCaches(cfg.IndexStore, cfg.EndpointCache))
	}
	s := &Server{
		registry:   cfg.Registry,
		catalog:    cfg.Catalog,
		store:      cfg.Store,
		indexStore: cfg.IndexStore,
		endpoints:  cfg.EndpointCache,
		uploaded:   make(map[string]bool),
		reg:        obs.NewRegistry(),
		sweepPolicy: datastore.SweepPolicy{
			TotalBytes: cfg.ArtifactCapBytes,
			KindBytes:  perKindCaps(cfg.IndexCapBytes, cfg.EndpointCapBytes),
		},
	}
	// Uploads that survived a restart are rediscovered from the store.
	if names, err := cfg.Store.ListDatasets(); err == nil {
		for _, n := range names {
			s.uploaded[n] = true
		}
	}

	// The traffic sketch restores from its persisted artifact when one
	// survives (corruption or version skew costs warmth, never a
	// boot), so the learned pre-warm below can act on the PREVIOUS
	// process's workload.
	if cfg.TrafficTopK >= 0 {
		data, _ := cfg.Store.LoadTrafficSketch()
		s.traffic, s.trafficState.restored = traffic.Load(data, cfg.TrafficTopK)
	}
	s.trafficState.init(s.traffic, s.reg)

	sched, err := task.NewScheduler(task.SchedulerConfig{
		Registry:           cfg.Registry,
		Store:              cfg.Store,
		Workers:            cfg.Workers,
		BatchWorkers:       cfg.BatchWorkers,
		TaskTimeout:        cfg.TaskTimeout,
		Admission:          cfg.Admission,
		Traffic:            s.traffic,
		Load:               s.loadDataset,
		SlowQueryThreshold: cfg.SlowQueryThreshold,
		SlowQueryLog:       cfg.SlowQueryLog,
	})
	if err != nil {
		return nil, err
	}
	s.scheduler = sched
	// Seed the cost calibrator with the rates the previous process
	// learned (persisted inside the traffic sketch), so the first
	// predictions after a deploy are measured, not fallback.
	if s.traffic != nil {
		sched.RestoreCalibration(s.traffic.Calibrations())
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/algorithms", s.handleAlgorithms)
	mux.HandleFunc("GET /api/datasets", s.handleDatasets)
	mux.HandleFunc("GET /api/datasets/{name}", s.handleDatasetStats)
	mux.HandleFunc("POST /api/datasets/{name}", s.handleUpload)
	mux.HandleFunc("POST /api/tasks", s.handleSubmit)
	mux.HandleFunc("GET /api/tasks/{id}", s.handleTask)
	mux.HandleFunc("GET /api/compare/{id}", s.handleCompare)
	mux.HandleFunc("GET /", s.handleHome)
	mux.HandleFunc("GET /compare/{id}", s.handleComparePage)
	mux.HandleFunc("GET /instructions", s.handleInstructions)
	s.registerExtensions(mux)
	mux.Handle("GET /metrics", obs.Handler(s.metricsRegistries()...))
	if cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux

	// Background lifecycle work starts only when asked for, so test
	// servers and embedded deployments pay nothing by default.
	lifeCtx, lifeCancel := context.WithCancel(context.Background())
	s.lifeCancel = lifeCancel
	s.prewarm.init(cfg.PreWarm, s.reg)
	s.gc.init(cfg.ArtifactCapBytes, s.reg)
	if cfg.PreWarm {
		s.lifeWG.Add(1)
		go s.runPrewarm(lifeCtx)
	}
	if cfg.ArtifactCapBytes > 0 || len(s.sweepPolicy.KindBytes) > 0 {
		s.lifeWG.Add(1)
		go s.runSweeper(lifeCtx)
	}
	if s.traffic != nil {
		s.lifeWG.Add(1)
		go s.runTrafficSaver(lifeCtx)
		if hl := cfg.trafficHalfLife(); hl > 0 {
			s.lifeWG.Add(1)
			go s.runTrafficDecayer(lifeCtx, hl)
		}
	}
	return s, nil
}

// DefaultTrafficHalfLife is the decay cadence when Config leaves
// TrafficHalfLife zero: hot keys halve hourly, so a key stops looking
// warm roughly a workday after traffic moves away from it.
const DefaultTrafficHalfLife = time.Hour

// trafficHalfLife resolves the configured decay cadence: zero selects
// the default, negative disables decay entirely.
func (c Config) trafficHalfLife() time.Duration {
	switch {
	case c.TrafficHalfLife == 0:
		return DefaultTrafficHalfLife
	case c.TrafficHalfLife < 0:
		return 0
	}
	return c.TrafficHalfLife
}

// perKindCaps assembles the sweep policy's per-kind cap map from the
// two config fields, omitting unset kinds so the policy's "no cap"
// semantics stay the map's absence, not a zero.
func perKindCaps(idx, ep int64) map[string]int64 {
	caps := make(map[string]int64, 2)
	if idx > 0 {
		caps["indexes"] = idx
	}
	if ep > 0 {
		caps["endpoints"] = ep
	}
	if len(caps) == 0 {
		return nil
	}
	return caps
}

// Close cancels the server's background lifecycle work (startup
// pre-warm, artifact GC, traffic persistence) and waits for it to
// stop. The traffic saver writes the sketch one final time on the way
// out, so the workload observed this boot informs the next boot's
// learned pre-warm. In-flight artifact writes finish atomically, so a
// close mid-pre-warm never leaves a partial artifact — at worst a
// missing one. Close does not stop the scheduler; call
// Scheduler().Shutdown for that.
func (s *Server) Close() {
	s.lifeCancel()
	s.lifeWG.Wait()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Scheduler exposes the underlying scheduler (used by tests and by
// embedded deployments that submit tasks directly).
func (s *Server) Scheduler() *task.Scheduler { return s.scheduler }

// metricsRegistries collects every registry the /metrics scrape
// merges: the process-wide default (bippr hot-path counters), the
// per-instance component registries (scheduler, index store, endpoint
// cache, datastore) and the server's own (prewarm, artifact GC). Nil
// entries — a custom IndexStore without metrics — are skipped by the
// writer.
func (s *Server) metricsRegistries() []*obs.Registry {
	return []*obs.Registry{
		obs.Default(),
		s.reg,
		s.scheduler.MetricsRegistry(),
		bippr.StoreMetricsRegistry(s.indexStore),
		s.endpoints.MetricsRegistry(),
		s.store.MetricsRegistry(),
	}
}

// loadDataset resolves a dataset name: catalog datasets are generated,
// uploaded datasets are read from the datastore.
func (s *Server) loadDataset(name string) (*graph.Graph, error) {
	if d, err := s.catalog.Get(name); err == nil {
		return d.Load()
	}
	s.mu.RLock()
	up := s.uploaded[name]
	s.mu.RUnlock()
	if up {
		return s.store.LoadDataset(name)
	}
	return nil, fmt.Errorf("server: unknown dataset %q", name)
}

// datasetExists reports whether a dataset name is resolvable.
func (s *Server) datasetExists(name string) bool {
	if _, err := s.catalog.Get(name); err == nil {
		return true
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.uploaded[name]
}

// --- JSON helpers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encoding errors after the header is written can only be logged;
	// the connection is already committed.
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// --- API handlers ---

type algorithmInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	NeedsSource bool   `json:"needs_source"`
	NeedsTarget bool   `json:"needs_target"`
}

// algorithmInfos renders the registry for both the JSON API and the
// HTML UI, so the two views cannot drift.
func algorithmInfos(r *algo.Registry) []algorithmInfo {
	var out []algorithmInfo
	for _, a := range r.All() {
		out = append(out, algorithmInfo{
			Name:        a.Name(),
			Description: a.Description(),
			NeedsSource: a.NeedsSource(),
			NeedsTarget: algo.NeedsTarget(a),
		})
	}
	return out
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, algorithmInfos(s.registry))
}

type datasetInfo struct {
	Name             string   `json:"name"`
	Kind             string   `json:"kind"`
	Description      string   `json:"description"`
	SuggestedSources []string `json:"suggested_sources,omitempty"`
	Uploaded         bool     `json:"uploaded,omitempty"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	var out []datasetInfo
	for _, d := range s.catalog.All() {
		out = append(out, datasetInfo{
			Name:             d.Name,
			Kind:             d.Kind,
			Description:      d.Description,
			SuggestedSources: d.SuggestedSources,
		})
	}
	s.mu.RLock()
	for name := range s.uploaded {
		out = append(out, datasetInfo{
			Name: name, Kind: "uploaded",
			Description: "user-uploaded dataset", Uploaded: true,
		})
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, out)
}

type datasetStats struct {
	Name  string      `json:"name"`
	Stats graph.Stats `json:"stats"`
}

func (s *Server) handleDatasetStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	g, err := s.loadDataset(name)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, datasetStats{Name: name, Stats: graph.ComputeStats(g)})
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, err := s.catalog.Get(name); err == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("server: %q is a pre-loaded dataset and cannot be replaced", name))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxUploadBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: reading upload: %w", err))
		return
	}
	if len(body) > maxUploadBytes {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("server: upload exceeds %d bytes", maxUploadBytes))
		return
	}
	format := formats.Format(r.URL.Query().Get("format"))
	if format == "" {
		format, err = formats.Detect(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	if !format.Valid() {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: %q", formats.ErrUnknownFormat, format))
		return
	}
	g, err := formats.Read(bytes.NewReader(body), format)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.store.SaveDataset(name, g); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	s.uploaded[name] = true
	s.mu.Unlock()
	s.scheduler.InvalidateDataset(name)
	writeJSON(w, http.StatusCreated, datasetStats{Name: name, Stats: graph.ComputeStats(g)})
}

// submitRequest accepts two submission shapes, combinable in one
// request:
//
//   - tasks: independent (dataset, algorithm, params) triples, each
//     its own scheduled task — the original API.
//   - queries + dataset [+ algorithm]: a *batch* — many queries
//     (multiple targets and/or sources) against one dataset, fused
//     into a single scheduled task that loads the graph once and
//     shares the reverse-push index store and walk worker pool across
//     subqueries. Each query may name its own algorithm or inherit
//     the top-level default.
type submitRequest struct {
	Tasks []task.Spec `json:"tasks"`

	Dataset   string         `json:"dataset,omitempty"`
	Algorithm string         `json:"algorithm,omitempty"`
	Queries   []task.SubSpec `json:"queries,omitempty"`
	// Parallelism bounds how many of the batch's subqueries run
	// concurrently (0 = GOMAXPROCS, capped by batch size; results are
	// bit-identical at every value).
	Parallelism int `json:"parallelism,omitempty"`
	// Params is accepted only to *reject* it: each batch query carries
	// its own params, and silently dropping a top-level object a
	// client expected to apply to every query would return plausible
	// results computed with the wrong parameters.
	Params algo.Params `json:"params,omitempty"`
	// Class assigns the batch a request class ("interactive" or
	// "batch"; default: batch for a queries submission). Tasks in the
	// tasks array carry their own class field.
	Class task.Class `json:"class,omitempty"`
	// TimeoutMS tightens the batch's execution deadline below the
	// server's TaskTimeout (it can never loosen it).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

type submitResponse struct {
	ComparisonID string   `json:"comparison_id"`
	TaskIDs      []string `json:"task_ids"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: decoding request: %w", err))
		return
	}
	builder := task.NewBuilder(s.registry, s.datasetExists)
	for i, spec := range req.Tasks {
		if err := builder.Add(spec); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("task %d: %w", i, err))
			return
		}
	}
	// Top-level parallelism only shapes the top-level queries batch;
	// accepting it without one would silently run any tasks-array
	// batches at the default width the client did not choose (same
	// rationale as the Params rejection below).
	if req.Parallelism != 0 && len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("server: top-level parallelism requires a top-level queries array; for batches inside tasks, set parallelism on the batch entry itself"))
		return
	}
	if len(req.Queries) > 0 {
		if req.Params != (algo.Params{}) {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("server: top-level params are not applied to batch queries; set params on each entry of the queries array"))
			return
		}
		batch := task.Spec{
			Dataset:     req.Dataset,
			Algorithm:   req.Algorithm,
			Queries:     req.Queries,
			Parallelism: req.Parallelism,
			Class:       req.Class,
			TimeoutMS:   req.TimeoutMS,
		}
		if err := builder.Add(batch); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("batch: %w", err))
			return
		}
	}
	if builder.Len() == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: empty query set"))
		return
	}
	qs, ids, err := s.scheduler.Submit(builder.Specs())
	if err != nil {
		// A shed is not a failure: admission control refused the work
		// before anything was registered or loaded. 429 + Retry-After
		// tells well-behaved clients exactly when to come back.
		var shed *task.ShedError
		if errors.As(err, &shed) {
			w.Header().Set("Retry-After",
				strconv.Itoa(int((shed.RetryAfter+time.Second-1)/time.Second)))
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{ComparisonID: qs, TaskIDs: ids})
}

type taskView struct {
	Task   task.Task    `json:"task"`
	Result *task.Result `json:"result,omitempty"`
	Log    string       `json:"log,omitempty"`
}

func (s *Server) taskView(id string, includeLog bool) (taskView, error) {
	t, err := s.scheduler.Status(id)
	if err != nil {
		return taskView{}, err
	}
	view := taskView{Task: t}
	// Batch tasks persist per-subquery progress, so a batch has a
	// readable (partial) result document while running — and keeps it
	// if it later times out or is cancelled: the subresults completed
	// before the interruption stay visible.
	if t.State == task.StateDone || t.IsBatch() {
		if doc, err := s.scheduler.LoadResult(id); err == nil {
			view.Result = &doc
		}
	}
	if includeLog {
		if log, err := s.store.ReadLog(id); err == nil {
			view.Log = log
		}
	}
	return view, nil
}

func (s *Server) handleTask(w http.ResponseWriter, r *http.Request) {
	view, err := s.taskView(r.PathValue("id"), r.URL.Query().Get("log") == "1")
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

type compareResponse struct {
	ComparisonID string     `json:"comparison_id"`
	Tasks        []taskView `json:"tasks"`
	Done         bool       `json:"done"`
}

func (s *Server) compareView(id string) (compareResponse, error) {
	tasks, err := s.scheduler.QuerySet(id)
	if err != nil {
		return compareResponse{}, err
	}
	resp := compareResponse{ComparisonID: id, Done: true}
	for _, t := range tasks {
		view, err := s.taskView(t.ID, false)
		if err != nil {
			return compareResponse{}, err
		}
		if !t.State.Terminal() {
			resp.Done = false
		}
		resp.Tasks = append(resp.Tasks, view)
	}
	return resp, nil
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	resp, err := s.compareView(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
