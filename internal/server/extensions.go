package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/bippr"
	"github.com/cyclerank/cyclerank-go/internal/core"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
	"github.com/cyclerank/cyclerank-go/internal/task"
)

// registerExtensions mounts the endpoints beyond the demo's minimum:
// task cancellation, upload deletion, quantified comparison, and the
// cycle-explanation drill-down.
func (s *Server) registerExtensions(mux *http.ServeMux) {
	mux.HandleFunc("DELETE /api/tasks/{id}", s.handleCancelTask)
	mux.HandleFunc("DELETE /api/datasets/{name}", s.handleDeleteDataset)
	mux.HandleFunc("GET /api/compare/{id}/agreement", s.handleAgreement)
	mux.HandleFunc("POST /api/cycles", s.handleCycles)
	mux.HandleFunc("GET /api/status", s.handleStatus)
	mux.HandleFunc("GET /api/datasets/{name}/ego", s.handleEgoNet)
}

// statusResponse is the platform health/workload snapshot.
type statusResponse struct {
	Scheduler  task.Metrics     `json:"scheduler"`
	Datasets   int              `json:"datasets"`
	Uploads    int              `json:"uploads"`
	Algorithms int              `json:"algorithms"`
	IndexStore indexStoreStatus `json:"index_store"`
	// EndpointCache surfaces the walk-endpoint reuse counters: hits
	// are queries that re-weighted a recorded walk pass instead of
	// simulating walks (walks_avoided totals what they skipped),
	// split by tier like the index store now that recordings persist.
	EndpointCache endpointCacheStatus `json:"endpoint_cache"`
	// ArtifactGC reports the size-capped artifact sweeper (cap_bytes
	// 0 = disabled).
	ArtifactGC GCStatus `json:"artifact_gc"`
	// Prewarm reports the startup pre-warm task's progress.
	Prewarm PrewarmStatus `json:"prewarm"`
	// Serving reports the admission-controlled serving tier:
	// interactive slots in use, queue depth, estimated backlog,
	// admitted/shed totals and graph loads.
	Serving task.AdmissionSnapshot `json:"serving"`
	// Traffic reports the workload frequency sketch behind the
	// learned pre-warm.
	Traffic TrafficStatus `json:"traffic"`
	// Graphs lists the datasets resident in the scheduler's graph
	// cache with the bytes each pins — memory_bytes includes every
	// derived hot-path view; layout_bytes, sample_table_bytes and
	// compressed_bytes are the per-view shares — so capacity planning
	// sees the real residency, not just dataset counts.
	Graphs []task.LoadedGraphRow `json:"graphs"`
}

// indexStoreStatus surfaces the target-index store's tiered counters
// plus the persisted artifacts on disk, so warm-vs-cold behaviour —
// in particular a restart finding its indexes — is observable from
// the outside.
type indexStoreStatus struct {
	bippr.StoreStats
	DiskFiles int   `json:"disk_files"`
	DiskBytes int64 `json:"disk_bytes"`
}

// endpointCacheStatus is the same shape for the walk-endpoint cache:
// reuse counters plus the persisted recordings on disk.
type endpointCacheStatus struct {
	bippr.EndpointStats
	DiskFiles int   `json:"disk_files"`
	DiskBytes int64 `json:"disk_bytes"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	uploads := len(s.uploaded)
	s.mu.RUnlock()
	usage := s.artifactDiskUsage()
	idx := indexStoreStatus{StoreStats: s.indexStore.Stats(),
		DiskFiles: usage.idxFiles, DiskBytes: usage.idxBytes}
	ep := endpointCacheStatus{EndpointStats: s.endpoints.Stats(),
		DiskFiles: usage.epFiles, DiskBytes: usage.epBytes}
	writeJSON(w, http.StatusOK, statusResponse{
		Scheduler:     s.scheduler.Metrics(),
		Datasets:      s.catalog.Len() + uploads,
		Uploads:       uploads,
		Algorithms:    len(s.registry.Names()),
		IndexStore:    idx,
		EndpointCache: ep,
		ArtifactGC:    s.gc.snapshot(),
		Prewarm:       s.prewarm.snapshot(),
		Serving:       s.scheduler.AdmissionStats(),
		Traffic:       s.trafficStatus(),
		Graphs:        s.scheduler.LoadedGraphs(),
	})
}

// artifactUsageTTL bounds how often a status poll re-walks the
// artifact trees: monitoring systems poll /api/status aggressively,
// and the walk stats every artifact file.
const artifactUsageTTL = 10 * time.Second

// artifactUsage is the cached on-disk usage of both artifact kinds.
type artifactUsage struct {
	idxFiles, epFiles int
	idxBytes, epBytes int64
}

// artifactDiskUsage returns the persisted-artifact usage, cached for
// artifactUsageTTL. Best-effort observability: a walk error reports
// the last known values rather than failing the health endpoint.
func (s *Server) artifactDiskUsage() artifactUsage {
	s.usageMu.Lock()
	defer s.usageMu.Unlock()
	if time.Since(s.usageAt) < artifactUsageTTL {
		return s.usage
	}
	if files, bytes, err := s.store.IndexUsage(); err == nil {
		s.usage.idxFiles, s.usage.idxBytes = files, bytes
	}
	if files, bytes, err := s.store.EndpointUsage(); err == nil {
		s.usage.epFiles, s.usage.epBytes = files, bytes
	}
	s.usageAt = time.Now()
	return s.usage
}

func (s *Server) handleCancelTask(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.scheduler.Cancel(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	t, err := s.scheduler.Status(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, taskView{Task: t})
}

func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, err := s.catalog.Get(name); err == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("server: %q is a pre-loaded dataset and cannot be deleted", name))
		return
	}
	s.mu.Lock()
	known := s.uploaded[name]
	delete(s.uploaded, name)
	s.mu.Unlock()
	if !known {
		writeError(w, http.StatusNotFound, fmt.Errorf("server: unknown dataset %q", name))
		return
	}
	if err := s.store.DeleteDataset(name); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.scheduler.InvalidateDataset(name)
	w.WriteHeader(http.StatusNoContent)
}

// agreementPair quantifies how much two completed tasks of a query set
// agree — the metric behind the demo's side-by-side view.
type agreementPair struct {
	TaskA        string    `json:"task_a"`
	TaskB        string    `json:"task_b"`
	AlgorithmA   string    `json:"algorithm_a"`
	AlgorithmB   string    `json:"algorithm_b"`
	Jaccard      float64   `json:"jaccard"`
	RBO          float64   `json:"rbo"`
	OverlapCurve []float64 `json:"overlap_curve"`
}

type agreementResponse struct {
	ComparisonID string          `json:"comparison_id"`
	K            int             `json:"k"`
	Pairs        []agreementPair `json:"pairs"`
}

func (s *Server) handleAgreement(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tasks, err := s.scheduler.QuerySet(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	k := 10
	if q := r.URL.Query().Get("k"); q != "" {
		k, err = strconv.Atoi(q)
		if err != nil || k < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("server: bad depth k=%q", q))
			return
		}
	}

	type done struct {
		t   task.Task
		top []string
	}
	var completed []done
	for _, t := range tasks {
		// Batch tasks carry per-subquery results, not one ranking; an
		// empty batch Top compared pairwise would render as zero
		// agreement instead of "not comparable".
		if t.State != task.StateDone || t.IsBatch() {
			continue
		}
		doc, err := s.scheduler.LoadResult(t.ID)
		if err != nil {
			continue
		}
		labels := make([]string, 0, k)
		for _, e := range doc.Top {
			if len(labels) == k {
				break
			}
			labels = append(labels, e.Label)
		}
		completed = append(completed, done{t: t, top: labels})
	}
	if len(completed) < 2 {
		writeError(w, http.StatusConflict,
			fmt.Errorf("server: agreement needs at least 2 completed tasks, have %d", len(completed)))
		return
	}

	resp := agreementResponse{ComparisonID: id, K: k}
	for i := 0; i < len(completed); i++ {
		for j := i + 1; j < len(completed); j++ {
			a, b := completed[i], completed[j]
			rbo, err := ranking.ListRBO(a.top, b.top, 0.9)
			if err != nil {
				writeError(w, http.StatusInternalServerError, err)
				return
			}
			resp.Pairs = append(resp.Pairs, agreementPair{
				TaskA: a.t.ID, TaskB: b.t.ID,
				AlgorithmA: a.t.Algorithm, AlgorithmB: b.t.Algorithm,
				Jaccard:      ranking.ListJaccard(a.top, b.top),
				RBO:          rbo,
				OverlapCurve: ranking.ListOverlapCurve(a.top, b.top),
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// egoResponse carries the neighborhood subgraph a UI visualizes around
// a query node.
type egoResponse struct {
	Center string      `json:"center"`
	Radius int         `json:"radius"`
	Nodes  []string    `json:"nodes"`
	Edges  [][2]string `json:"edges"`
}

func (s *Server) handleEgoNet(w http.ResponseWriter, r *http.Request) {
	g, err := s.loadDataset(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	label := r.URL.Query().Get("node")
	center, ok := g.NodeByLabel(label)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: node %q not found", label))
		return
	}
	radius := 1
	if q := r.URL.Query().Get("radius"); q != "" {
		radius, err = strconv.Atoi(q)
		if err != nil || radius < 0 || radius > 4 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("server: radius must be in [0,4], got %q", q))
			return
		}
	}
	ego, _, err := graph.EgoNet(g, center, radius)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	const maxEgoNodes = 2000
	if ego.NumNodes() > maxEgoNodes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("server: ego net has %d nodes (limit %d); reduce the radius", ego.NumNodes(), maxEgoNodes))
		return
	}
	resp := egoResponse{Center: label, Radius: radius}
	for v := 0; v < ego.NumNodes(); v++ {
		resp.Nodes = append(resp.Nodes, ego.Label(graph.NodeID(v)))
	}
	ego.Edges(func(u, v graph.NodeID) bool {
		resp.Edges = append(resp.Edges, [2]string{ego.Label(u), ego.Label(v)})
		return true
	})
	writeJSON(w, http.StatusOK, resp)
}

// cyclesRequest asks "which cycles connect source and node?" — the
// explanation behind one ranking row.
type cyclesRequest struct {
	Dataset string `json:"dataset"`
	Source  string `json:"source"`
	Node    string `json:"node,omitempty"` // empty: all cycles through source
	K       int    `json:"k,omitempty"`
	Limit   int    `json:"limit,omitempty"`
}

type cycleView struct {
	Length int      `json:"length"`
	Nodes  []string `json:"nodes"`
}

type cyclesResponse struct {
	Total  int64       `json:"total_cycles"`
	Cycles []cycleView `json:"cycles"`
}

func (s *Server) handleCycles(w http.ResponseWriter, r *http.Request) {
	var req cyclesRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: decoding request: %w", err))
		return
	}
	g, err := s.loadDataset(req.Dataset)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	src, ok := g.NodeByLabel(req.Source)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: source %q not found", req.Source))
		return
	}
	k := req.K
	if k == 0 {
		k = core.DefaultK
	}
	limit := req.Limit
	if limit <= 0 || limit > 1000 {
		limit = 100
	}

	var (
		cycles []core.Cycle
		total  int64
	)
	if req.Node == "" {
		cycles, total, err = core.ListCycles(r.Context(), g, src, core.Params{K: k}, limit)
	} else {
		var node = src
		node, ok = g.NodeByLabel(req.Node)
		if !ok {
			writeError(w, http.StatusBadRequest, fmt.Errorf("server: node %q not found", req.Node))
			return
		}
		cycles, err = core.CyclesThrough(r.Context(), g, src, node, core.Params{K: k}, limit)
		total = int64(len(cycles))
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}

	resp := cyclesResponse{Total: total}
	for _, c := range cycles {
		resp.Cycles = append(resp.Cycles, cycleView{Length: c.Len(), Nodes: c.Labels(g)})
	}
	writeJSON(w, http.StatusOK, resp)
}
