package server

import (
	"net/http"
	"testing"

	"github.com/cyclerank/cyclerank-go/internal/task"
)

// TestEndpointPersistenceAcrossServerRestart is the acceptance
// integration test for persisted walk-endpoint recordings: a
// walk-reuse pair query before a restart leaves both its reverse-push
// index AND its source's recorded walk pass on disk; the restarted
// server serves the same query entirely from the disk tiers — zero
// reverse pushes, zero fresh walk passes, stats-verified — and
// returns scores bit-identical to the pre-restart query.
func TestEndpointPersistenceAcrossServerRestart(t *testing.T) {
	dir := t.TempDir()
	submit := `{"dataset": "complete-50", "algorithm": "bippr-pair",
		"queries": [{"params": {"source": "2", "target": "7", "walks": 512, "walk_reuse": true}}]}`

	_, ts1 := newPersistentServer(t, dir)
	out, status := postTasks(t, ts1.URL, submit)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	before := waitTask(t, ts1.URL, out.TaskIDs[0])
	if before.Task.State != task.StateDone {
		t.Fatalf("pre-restart task %s (%s)", before.Task.State, before.Task.Error)
	}
	var st1 statusResponse
	getJSON(t, ts1.URL+"/api/status", &st1)
	if st1.EndpointCache.Misses != 1 || st1.EndpointCache.DiskWrites != 1 {
		t.Fatalf("pre-restart endpoint stats %+v, want one recorded pass and one persisted artifact",
			st1.EndpointCache)
	}
	ts1.Close()

	// Restart: fresh server process over the same datastore.
	_, ts2 := newPersistentServer(t, dir)
	out2, status := postTasks(t, ts2.URL, submit)
	if status != http.StatusAccepted {
		t.Fatalf("post-restart submit status %d", status)
	}
	after := waitTask(t, ts2.URL, out2.TaskIDs[0])
	if after.Task.State != task.StateDone {
		t.Fatalf("post-restart task %s (%s)", after.Task.State, after.Task.Error)
	}

	var st2 statusResponse
	getJSON(t, ts2.URL+"/api/status", &st2)
	// Zero fresh walk passes: the recording came off disk.
	if st2.EndpointCache.DiskHits != 1 {
		t.Errorf("post-restart endpoint disk hits = %d, want 1", st2.EndpointCache.DiskHits)
	}
	if st2.EndpointCache.Misses != 0 {
		t.Errorf("post-restart endpoint misses = %d, want 0 (no fresh walk pass after restart)",
			st2.EndpointCache.Misses)
	}
	if st2.EndpointCache.WalksAvoided != 512 {
		t.Errorf("walks avoided = %d, want 512", st2.EndpointCache.WalksAvoided)
	}
	// And the index side stayed warm too: the whole pair query paid
	// only deserialization.
	if st2.IndexStore.Misses != 0 || st2.IndexStore.DiskHits != 1 {
		t.Errorf("post-restart index stats %+v, want one disk hit and no pushes", st2.IndexStore)
	}
	if st2.EndpointCache.DiskFiles < 1 || st2.EndpointCache.DiskBytes <= 0 {
		t.Errorf("post-restart endpoint disk usage (%d files, %d bytes), want the artifact visible",
			st2.EndpointCache.DiskFiles, st2.EndpointCache.DiskBytes)
	}

	// Bit-identical scores from the restored recording.
	if len(before.Result.Queries) != 1 || len(after.Result.Queries) != 1 {
		t.Fatal("missing subresults")
	}
	b, a := before.Result.Queries[0], after.Result.Queries[0]
	if len(b.Top) != len(a.Top) || len(b.Top) == 0 {
		t.Fatalf("top sizes differ or empty: %d vs %d", len(b.Top), len(a.Top))
	}
	for i := range b.Top {
		if b.Top[i] != a.Top[i] {
			t.Errorf("top[%d] differs after restart: %+v vs %+v", i, b.Top[i], a.Top[i])
		}
	}
}
