package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/datasets"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/task"
)

// newPersistentServer builds a server the way deployments do: no
// explicit registry, so the bidirectional estimator runs over the
// server's persistent two-tier index store rooted at dir.
func newPersistentServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	store, err := datastore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := datasets.BuiltinCatalogSubset("complete-50")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Catalog: catalog, Store: store, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// postTasks submits a request body and decodes the response.
func postTasks(t *testing.T, url, body string) (submitResponse, int) {
	t.Helper()
	resp, err := http.Post(url+"/api/tasks", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out submitResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

// waitTask polls a task until it is terminal.
func waitTask(t *testing.T, url, id string) taskView {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		var view taskView
		getJSON(t, url+"/api/tasks/"+id, &view)
		if view.Task.State.Terminal() {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("task %s still %s after 15s", id, view.Task.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBatchSubmissionEndToEnd drives the queries array through the
// HTTP API: one batch task, per-query status, per-subquery results.
func TestBatchSubmissionEndToEnd(t *testing.T) {
	_, ts := newPersistentServer(t, t.TempDir())

	out, status := postTasks(t, ts.URL, `{
		"dataset": "complete-50", "algorithm": "ppr-target",
		"queries": [
			{"params": {"target": "0"}},
			{"params": {"target": "1"}},
			{"algorithm": "bippr-pair", "params": {"source": "2", "target": "0", "walks": 200}}
		]
	}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	if len(out.TaskIDs) != 1 {
		t.Fatalf("batch produced %d task ids, want 1", len(out.TaskIDs))
	}

	view := waitTask(t, ts.URL, out.TaskIDs[0])
	if view.Task.State != task.StateDone {
		t.Fatalf("batch state %s (error %q)", view.Task.State, view.Task.Error)
	}
	if view.Task.QueriesDone != 3 || len(view.Task.QueryStates) != 3 {
		t.Fatalf("per-query status: done=%d states=%v", view.Task.QueriesDone, view.Task.QueryStates)
	}
	for i, st := range view.Task.QueryStates {
		if st != task.StateDone {
			t.Errorf("query state[%d] = %s", i, st)
		}
	}
	if view.Result == nil || len(view.Result.Queries) != 3 {
		t.Fatalf("result missing per-subquery entries: %+v", view.Result)
	}
	for i, sub := range view.Result.Queries {
		if sub.State != task.StateDone {
			t.Errorf("subresult %d state %s (error %q)", i, sub.State, sub.Error)
		}
	}
	// The third query inherited nothing: it named bippr-pair itself.
	if view.Result.Queries[2].Algorithm != "bippr-pair" {
		t.Errorf("subresult 2 algorithm %q", view.Result.Queries[2].Algorithm)
	}
	if len(view.Result.Queries[0].Top) == 0 {
		t.Error("ppr-target subresult has empty top list")
	}
}

func TestBatchSubmissionValidation(t *testing.T) {
	_, ts := newPersistentServer(t, t.TempDir())
	for name, body := range map[string]string{
		"unknown dataset":   `{"dataset": "nope", "algorithm": "ppr-target", "queries": [{"params": {"target": "0"}}]}`,
		"missing dataset":   `{"algorithm": "ppr-target", "queries": [{"params": {"target": "0"}}]}`,
		"missing target":    `{"dataset": "complete-50", "algorithm": "ppr-target", "queries": [{"params": {}}]}`,
		"unknown algorithm": `{"dataset": "complete-50", "queries": [{"algorithm": "nope", "params": {"target": "0"}}]}`,
		"top-level params":  `{"dataset": "complete-50", "algorithm": "ppr-target", "params": {"alpha": 0.5}, "queries": [{"params": {"target": "0"}}]}`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, status := postTasks(t, ts.URL, body); status != http.StatusBadRequest {
				t.Errorf("status %d, want 400", status)
			}
		})
	}
	// tasks and queries combine into one query set.
	out, status := postTasks(t, ts.URL, `{
		"tasks": [{"dataset": "complete-50", "algorithm": "pagerank", "params": {}}],
		"dataset": "complete-50", "algorithm": "ppr-target",
		"queries": [{"params": {"target": "0"}}]
	}`)
	if status != http.StatusAccepted || len(out.TaskIDs) != 2 {
		t.Fatalf("combined submission: status %d, ids %v", status, out.TaskIDs)
	}
	// Drain before the TempDir cleanup races the executors' writes.
	for _, id := range out.TaskIDs {
		waitTask(t, ts.URL, id)
	}
}

// TestBatchParallelismAndWalkReuseEndToEnd drives the new knobs
// through the HTTP API: a parallelism'd batch of walk_reuse pair
// queries from one source completes with one recorded walk pass, the
// task view echoes the parallelism, and /api/status surfaces the
// endpoint-cache counters.
func TestBatchParallelismAndWalkReuseEndToEnd(t *testing.T) {
	_, ts := newPersistentServer(t, t.TempDir())

	out, status := postTasks(t, ts.URL, `{
		"dataset": "complete-50", "algorithm": "bippr-pair", "parallelism": 1,
		"queries": [
			{"params": {"source": "2", "target": "0", "walks": 512, "walk_reuse": true}},
			{"params": {"source": "2", "target": "1", "walks": 512, "walk_reuse": true}},
			{"params": {"source": "2", "target": "3", "walks": 512, "walk_reuse": true}}
		]
	}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	view := waitTask(t, ts.URL, out.TaskIDs[0])
	if view.Task.State != task.StateDone {
		t.Fatalf("batch state %s (error %q)", view.Task.State, view.Task.Error)
	}
	if view.Task.Parallelism != 1 {
		t.Errorf("task parallelism = %d, want the submitted 1", view.Task.Parallelism)
	}
	for i, sub := range view.Result.Queries {
		if sub.State != task.StateDone {
			t.Errorf("subresult %d state %s (error %q)", i, sub.State, sub.Error)
		}
	}

	var st statusResponse
	getJSON(t, ts.URL+"/api/status", &st)
	// Sequential batch: the first pair query records the source's walk
	// pass, the two later targets re-weight it.
	if st.EndpointCache.Misses != 1 {
		t.Errorf("endpoint misses = %d, want 1 (one walk pass for the shared source)", st.EndpointCache.Misses)
	}
	if st.EndpointCache.Hits != 2 {
		t.Errorf("endpoint hits = %d, want 2", st.EndpointCache.Hits)
	}
	if st.EndpointCache.WalksAvoided != 2*512 {
		t.Errorf("walks avoided = %d, want %d", st.EndpointCache.WalksAvoided, 2*512)
	}
	// The queries loaded one dataset; its row must report the real
	// residency, layout view included.
	if len(st.Graphs) != 1 || st.Graphs[0].Name != "complete-50" {
		t.Fatalf("status graphs = %+v, want one row for complete-50", st.Graphs)
	}
	if row := st.Graphs[0]; row.Nodes != 50 || row.LayoutBytes == 0 || row.MemoryBytes <= row.LayoutBytes {
		t.Errorf("graph row %+v: want 50 nodes and memory_bytes > layout_bytes > 0", row)
	}

	// Invalid parallelism is rejected at submission.
	if _, status := postTasks(t, ts.URL, `{
		"dataset": "complete-50", "algorithm": "ppr-target", "parallelism": -2,
		"queries": [{"params": {"target": "0"}}]
	}`); status != http.StatusBadRequest {
		t.Errorf("negative parallelism: status %d, want 400", status)
	}
	// Top-level parallelism without a top-level queries array would be
	// silently dropped (it does not reach tasks-array batches); the
	// handler rejects it instead, like stray top-level params.
	if _, status := postTasks(t, ts.URL, `{
		"parallelism": 2,
		"tasks": [{"dataset": "complete-50", "algorithm": "pagerank", "params": {}}]
	}`); status != http.StatusBadRequest {
		t.Errorf("top-level parallelism without queries: status %d, want 400", status)
	}
}

// TestIndexPersistenceAcrossServerRestart is the acceptance
// integration test at the platform level: a target query before a
// restart leaves an artifact; the restarted server serves the same
// query from the disk tier with zero reverse-push work, visible in
// /api/status.
func TestIndexPersistenceAcrossServerRestart(t *testing.T) {
	dir := t.TempDir()
	submit := `{"dataset": "complete-50", "algorithm": "ppr-target",
		"queries": [{"params": {"target": "7"}}]}`

	_, ts1 := newPersistentServer(t, dir)
	out, status := postTasks(t, ts1.URL, submit)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	before := waitTask(t, ts1.URL, out.TaskIDs[0])
	if before.Task.State != task.StateDone {
		t.Fatalf("pre-restart task %s (%s)", before.Task.State, before.Task.Error)
	}
	var st1 statusResponse
	getJSON(t, ts1.URL+"/api/status", &st1)
	if st1.IndexStore.Misses != 1 || st1.IndexStore.DiskWrites != 1 {
		t.Fatalf("pre-restart index stats %+v, want one miss and one persisted artifact", st1.IndexStore)
	}
	ts1.Close()

	// Restart: fresh server process over the same datastore.
	_, ts2 := newPersistentServer(t, dir)
	out2, status := postTasks(t, ts2.URL, submit)
	if status != http.StatusAccepted {
		t.Fatalf("post-restart submit status %d", status)
	}
	after := waitTask(t, ts2.URL, out2.TaskIDs[0])
	if after.Task.State != task.StateDone {
		t.Fatalf("post-restart task %s (%s)", after.Task.State, after.Task.Error)
	}

	var st2 statusResponse
	getJSON(t, ts2.URL+"/api/status", &st2)
	if st2.IndexStore.DiskHits != 1 {
		t.Errorf("post-restart disk hits = %d, want 1", st2.IndexStore.DiskHits)
	}
	if st2.IndexStore.Misses != 0 {
		t.Errorf("post-restart misses = %d, want 0 (no reverse push after restart)", st2.IndexStore.Misses)
	}
	if st2.IndexStore.DiskFiles < 1 || st2.IndexStore.DiskBytes <= 0 {
		t.Errorf("post-restart disk usage (%d files, %d bytes), want the persisted artifact visible",
			st2.IndexStore.DiskFiles, st2.IndexStore.DiskBytes)
	}

	// Identical rankings from the restored index.
	if len(before.Result.Queries) != 1 || len(after.Result.Queries) != 1 {
		t.Fatal("missing subresults")
	}
	b, a := before.Result.Queries[0], after.Result.Queries[0]
	if len(b.Top) != len(a.Top) {
		t.Fatalf("top sizes differ: %d vs %d", len(b.Top), len(a.Top))
	}
	for i := range b.Top {
		if b.Top[i] != a.Top[i] {
			t.Errorf("top[%d] differs after restart: %+v vs %+v", i, b.Top[i], a.Top[i])
		}
	}
}
