package experiments

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/bippr"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
)

// BiPPRPersist quantifies what the two-tier persistent index store
// buys at each tier: the same target query is served cold (reverse
// push paid, artifact written), warm-from-disk (a fresh estimator
// over the same datastore — the restarted-server scenario —
// deserializes the artifact instead of pushing), and warm-from-memory
// (the LRU hit a long-running server sees). The disk row is the
// headline: it is the latency a restart costs once indexes persist,
// versus the cold row it used to cost.
func BiPPRPersist(ctx context.Context, dataset, target string, rmax float64) (*Table, error) {
	g, err := loadDataset(dataset)
	if err != nil {
		return nil, err
	}
	tgt, ok := g.NodeByLabel(target)
	if !ok {
		return nil, fmt.Errorf("experiments: target %q not in %s", target, dataset)
	}
	if rmax == 0 {
		rmax = 1e-5
	}
	dir, err := os.MkdirTemp("", "bippr-persist-*")
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	defer os.RemoveAll(dir)
	store, err := datastore.Open(dir)
	if err != nil {
		return nil, err
	}

	p := bippr.Params{RMax: rmax}
	query := func(est *bippr.Estimator) (time.Duration, error) {
		return timed(func() error {
			_, err := est.TargetRank(ctx, g, tgt, p)
			return err
		})
	}

	// Cold: empty datastore, fresh process. Pays the push and writes
	// the artifact.
	cold := bippr.NewEstimatorWithStore(bippr.NewTieredStore(0, store))
	coldDur, err := query(cold)
	if err != nil {
		return nil, err
	}
	// Warm disk: a *new* estimator over the same datastore — the
	// restarted server. Zero reverse-push work; pays deserialization.
	restarted := bippr.NewEstimatorWithStore(bippr.NewTieredStore(0, store))
	diskDur, err := query(restarted)
	if err != nil {
		return nil, err
	}
	// Warm memory: the same estimator again — the steady state.
	memDur, err := query(restarted)
	if err != nil {
		return nil, err
	}
	stats := restarted.StoreStats()
	if stats.DiskHits != 1 || stats.Misses != 0 {
		return nil, fmt.Errorf("experiments: restarted store expected exactly one disk hit and no recompute, got %+v", stats)
	}
	files, bytes, err := store.IndexUsage()
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID: "ablation-bippr-persist",
		Title: fmt.Sprintf("Persistent index store for target %q on %s (rmax=%.0e; %d artifact(s), %d bytes on disk)",
			target, dataset, rmax, files, bytes),
		Headers: []string{"tier", "scenario", "time", "speedup vs cold"},
	}
	for _, row := range []struct {
		tier, scenario string
		dur            time.Duration
	}{
		{bippr.TierComputed.String(), "first query ever (reverse push + persist)", coldDur},
		{bippr.TierDisk.String(), "first query after restart (artifact load)", diskDur},
		{bippr.TierMemory.String(), "steady state (LRU hit)", memDur},
	} {
		speedup := "-"
		if row.dur > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(coldDur)/float64(row.dur))
		}
		t.Rows = append(t.Rows, []string{
			row.tier, row.scenario, row.dur.Round(time.Microsecond).String(), speedup,
		})
	}
	return t, nil
}
