package experiments

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/bippr"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
)

// EndpointPersist quantifies what persisting walk-endpoint recordings
// buys a restarted server: the same warm-source pair query is served
// cold (walks simulated, recording persisted), restarted WITHOUT the
// endpoint disk tier (the index deserializes but the walks re-run —
// what a restart cost before recordings persisted), restarted with
// both artifact tiers (everything deserializes; zero pushes, zero
// walk simulation), and warm-from-memory (the steady state). The
// estimate column must be identical on every row — recorded chunks
// fold through the same sorted-count summation fresh walks use — and
// the function errors out if it ever differs.
func EndpointPersist(ctx context.Context, dataset, source, target string, walks int) (*Table, error) {
	g, err := loadDataset(dataset)
	if err != nil {
		return nil, err
	}
	src, ok := g.NodeByLabel(source)
	if !ok {
		return nil, fmt.Errorf("experiments: source %q not in %s", source, dataset)
	}
	tgt, ok := g.NodeByLabel(target)
	if !ok {
		return nil, fmt.Errorf("experiments: target %q not in %s", target, dataset)
	}
	if walks == 0 {
		walks = 200000
	}
	dir, err := os.MkdirTemp("", "bippr-endpoint-persist-*")
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	defer os.RemoveAll(dir)
	store, err := datastore.Open(dir)
	if err != nil {
		return nil, err
	}

	p := bippr.Params{RMax: 1e-4, Walks: walks, ReuseEndpoints: true}
	tiered := func() *bippr.Estimator {
		return bippr.NewEstimatorWithCaches(
			bippr.NewTieredStore(0, store), bippr.NewTieredEndpointCache(0, store))
	}
	query := func(est *bippr.Estimator) (bippr.Estimate, time.Duration, error) {
		var e bippr.Estimate
		dur, err := timed(func() error {
			var err error
			e, err = est.Pair(ctx, g, src, tgt, p)
			return err
		})
		return e, dur, err
	}

	// Cold: empty datastore, fresh process. Pays the push and the walk
	// pass, persists both artifacts.
	cold, coldDur, err := query(tiered())
	if err != nil {
		return nil, err
	}
	// Restart, endpoints memory-only: the pre-persistence world. The
	// index loads from disk but the walk pass re-simulates.
	noEP := bippr.NewEstimatorWithCaches(bippr.NewTieredStore(0, store), bippr.NewEndpointCache(0))
	rewalk, rewalkDur, err := query(noEP)
	if err != nil {
		return nil, err
	}
	// Restart with both tiers: the restarted-server scenario this
	// ablation is about. Zero pushes, zero walk simulation.
	restarted := tiered()
	warmDisk, diskDur, err := query(restarted)
	if err != nil {
		return nil, err
	}
	if s := restarted.EndpointStats(); s.DiskHits != 1 || s.Misses != 0 {
		return nil, fmt.Errorf("experiments: restarted endpoint cache expected exactly one disk hit and no walk pass, got %+v", s)
	}
	// Warm memory: the same estimator again — the steady state.
	warmMem, memDur, err := query(restarted)
	if err != nil {
		return nil, err
	}
	for name, e := range map[string]bippr.Estimate{
		"re-walk": rewalk, "warm-disk": warmDisk, "warm-memory": warmMem,
	} {
		if e.Value != cold.Value {
			return nil, fmt.Errorf("experiments: %s estimate %v differs from cold %v — persistence broke bit-identity",
				name, e.Value, cold.Value)
		}
	}
	files, bytes, err := store.EndpointUsage()
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID: "ablation-endpoint-persist",
		Title: fmt.Sprintf("Persisted walk-endpoint recordings for π(%q→%q) on %s (%d walks; estimate %.3e; %d recording(s), %d bytes on disk)",
			source, target, dataset, walks, cold.Value, files, bytes),
		Headers: []string{"scenario", "walk pass", "time", "speedup vs re-walk"},
	}
	for _, row := range []struct {
		scenario, walkPass string
		dur                time.Duration
	}{
		{"first query ever (record + persist)", "simulated", coldDur},
		{"restart, memory-only endpoint cache", "re-simulated", rewalkDur},
		{"restart, persisted recordings", "deserialized", diskDur},
		{"steady state (LRU hit)", "re-weighted", memDur},
	} {
		speedup := "-"
		if row.dur > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(rewalkDur)/float64(row.dur))
		}
		t.Rows = append(t.Rows, []string{
			row.scenario, row.walkPass, row.dur.Round(time.Microsecond).String(), speedup,
		})
	}
	return t, nil
}
