package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/bippr"
	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// WalkSampleTable isolates the O(1) stepping table inside the batched
// cohort stepper: the slice-stepping baseline (this table's
// predecessor — CSR offset reads and row slice headers per step)
// against the packed-word path, with the serial per-walk stepper as
// the equivalence anchor. All three consume identical per-walk RNG
// substreams, so all three estimate columns must match bit-for-bit —
// the function errors out on any difference, making the table an
// equivalence proof as much as a timing.
func WalkSampleTable(ctx context.Context, dataset, source string, walks int) (*Table, error) {
	g, err := loadDataset(dataset)
	if err != nil {
		return nil, err
	}
	if g.SampleTable() == nil {
		return nil, fmt.Errorf("experiments: %s has no sample table", dataset)
	}
	src, ok := g.NodeByLabel(source)
	if !ok {
		return nil, fmt.Errorf("experiments: source %q not in %s", source, dataset)
	}
	if walks == 0 {
		walks = 200000
	}
	values := make([]float64, g.NumNodes())
	for i := range values {
		values[i] = float64(i%13) * 1e-5
	}
	wv := bippr.NewDenseVector(values)

	serial := bippr.NewWalkEstimator(g, 0.85, 42, 0)
	serial.SetBatchStepping(false)
	slicesStep := bippr.NewWalkEstimator(g, 0.85, 42, 0)
	slicesStep.SetSampleTable(false)
	tableStep := bippr.NewWalkEstimator(g, 0.85, 42, 0)

	t := &Table{
		ID: "ablation-walk-sample-table",
		Title: fmt.Sprintf("Walk stepping: CSR slice loads vs packed sample table, source %q on %s (%d walks, table %d bytes)",
			source, dataset, walks, g.SampleTableBytes()),
		Headers: []string{"workers", "mode", "estimate", "walk phase", "vs slice-step"},
	}
	for _, workers := range []int{1, 4} {
		var serialEst, sliceEst, tableEst float64
		serialDur, err := bestOf(3, func() error {
			var err error
			serialEst, err = serial.EstimateSum(ctx, src, walks, wv, workers)
			return err
		})
		if err != nil {
			return nil, err
		}
		sliceDur, err := bestOf(3, func() error {
			var err error
			sliceEst, err = slicesStep.EstimateSum(ctx, src, walks, wv, workers)
			return err
		})
		if err != nil {
			return nil, err
		}
		tableDur, err := bestOf(3, func() error {
			var err error
			tableEst, err = tableStep.EstimateSum(ctx, src, walks, wv, workers)
			return err
		})
		if err != nil {
			return nil, err
		}
		if tableEst != sliceEst || tableEst != serialEst {
			return nil, fmt.Errorf("experiments: workers=%d: table estimate %v, slice %v, serial %v — stepping must be bit-identical",
				workers, tableEst, sliceEst, serialEst)
		}
		speedup := func(d time.Duration) string {
			if d <= 0 {
				return "-"
			}
			return fmt.Sprintf("%.2fx", float64(sliceDur)/float64(d))
		}
		w := fmt.Sprint(workers)
		t.Rows = append(t.Rows,
			[]string{w, "serial per-walk", fmt.Sprintf("%.6g", serialEst), serialDur.Round(time.Microsecond).String(), speedup(serialDur)},
			[]string{w, "batched slice-step", fmt.Sprintf("%.6g", sliceEst), sliceDur.Round(time.Microsecond).String(), "1.00x"},
			[]string{w, "batched table-step", fmt.Sprintf("%.6g", tableEst), tableDur.Round(time.Microsecond).String(), speedup(tableDur)},
		)
	}
	return t, nil
}

// CSRCompress prices the delta-varint in-CSR against the raw remapped
// arrays on the reverse push, and proves the selection heuristic both
// ways: the dataset is built once under the default threshold — the
// function errors if a compressed view appears, since no catalog graph
// crosses DefaultCompressBytes — and once with compression forced, and
// the push over compressed rows must be bit-identical to the raw-row
// push (same decoded ids, same out-degree table, so identical float
// operations). The size columns report what the compressed framing
// actually saves; whether its time wins depends on whether the raw
// arrays miss cache, which catalog-sized graphs mostly don't — the
// threshold exists precisely to keep the plain path below LLC scale.
func CSRCompress(ctx context.Context, dataset string, targets []string, rmax float64) (*Table, error) {
	prev := graph.HotPath()
	defer graph.SetHotPath(prev)

	graph.SetHotPath(graph.HotPathConfig{})
	plain, err := loadDataset(dataset)
	if err != nil {
		return nil, err
	}
	if plain.Layout().CompressedIn() != nil {
		return nil, fmt.Errorf("experiments: %s compressed below the default threshold — selection broken", dataset)
	}
	graph.SetHotPath(graph.HotPathConfig{CompressBytes: 1})
	zipped, err := loadDataset(dataset)
	if err != nil {
		return nil, err
	}
	zip := zipped.Layout().CompressedIn()
	if zip == nil {
		return nil, fmt.Errorf("experiments: forcing the threshold built no compressed view on %s — selection broken", dataset)
	}
	graph.SetHotPath(graph.HotPathConfig{})
	if rmax == 0 {
		rmax = 1e-6
	}

	rawBytes := zipped.MemoryFootprint() - zip.Bytes()
	t := &Table{
		ID: "ablation-csr-compress",
		Title: fmt.Sprintf("Reverse push over raw vs delta-varint in-CSR on %s (rmax=%.0e; compressed view %d bytes vs %d raw in-adjacency, graph %d)",
			dataset, rmax, zip.Bytes(), int64(zipped.NumEdges())*4, rawBytes),
		Headers: []string{"target", "rows", "pushes", "max residual", "push time", "vs raw"},
	}
	for _, label := range targets {
		tgt, ok := plain.NodeByLabel(label)
		if !ok {
			return nil, fmt.Errorf("experiments: target %q not in %s", label, dataset)
		}
		var raw, comp *bippr.TargetIndex
		rawDur, err := bestOf(3, func() error {
			var err error
			raw, err = bippr.ReversePush(ctx, plain, tgt, 0.85, rmax)
			return err
		})
		if err != nil {
			return nil, err
		}
		compDur, err := bestOf(3, func() error {
			var err error
			comp, err = bippr.ReversePush(ctx, zipped, tgt, 0.85, rmax)
			return err
		})
		if err != nil {
			return nil, err
		}
		if comp.Pushes != raw.Pushes || comp.MaxResidual != raw.MaxResidual {
			return nil, fmt.Errorf("experiments: target %q: compressed push %d/%v, raw %d/%v — rows must decode bit-identically",
				label, comp.Pushes, comp.MaxResidual, raw.Pushes, raw.MaxResidual)
		}
		for s := 0; s < plain.NumNodes(); s++ {
			v := graph.NodeID(s)
			if comp.Estimates.Get(v) != raw.Estimates.Get(v) {
				return nil, fmt.Errorf("experiments: target %q: estimate at node %d differs between compressed and raw push", label, s)
			}
		}
		speedup := "-"
		if compDur > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(rawDur)/float64(compDur))
		}
		t.Rows = append(t.Rows,
			[]string{label, "raw arrays", fmt.Sprint(raw.Pushes), fmt.Sprintf("%.3g", raw.MaxResidual), rawDur.Round(time.Microsecond).String(), "1.00x"},
			[]string{label, "delta-varint", fmt.Sprint(comp.Pushes), fmt.Sprintf("%.3g", comp.MaxResidual), compDur.Round(time.Microsecond).String(), speedup},
		)
	}
	return t, nil
}

// PushBlocked times the reverse push's blocked inner kernel (batched
// reciprocal-multiply scatter, the default) against the exact
// per-edge-division loop on the same graph. The kernels are not
// bit-identical — multiplying by a rounded reciprocal perturbs each
// contribution by an ulp — so the function enforces the equivalence
// contract instead: both runs drive residuals below rmax and every
// estimate the two produce agrees within 2·rmax, erroring out
// otherwise.
func PushBlocked(ctx context.Context, dataset string, targets []string, rmax float64) (*Table, error) {
	prev := graph.HotPath()
	defer graph.SetHotPath(prev)

	g, err := loadDataset(dataset)
	if err != nil {
		return nil, err
	}
	if g.Layout() == nil {
		return nil, fmt.Errorf("experiments: %s has no layout view", dataset)
	}
	if rmax == 0 {
		rmax = 1e-6
	}
	t := &Table{
		ID: "ablation-push-blocked",
		Title: fmt.Sprintf("Reverse push inner kernel: per-edge division vs blocked reciprocal-multiply on %s (rmax=%.0e, block width %d)",
			dataset, rmax, 64),
		Headers: []string{"target", "kernel", "pushes", "max residual", "push time", "speedup"},
	}
	for _, label := range targets {
		tgt, ok := g.NodeByLabel(label)
		if !ok {
			return nil, fmt.Errorf("experiments: target %q not in %s", label, dataset)
		}
		// The two kernels are timed interleaved, one rep of each per
		// round, so slow drift (frequency scaling, co-tenant load)
		// hits both the same rather than biasing whichever ran last.
		var exact, blocked *bippr.TargetIndex
		var exactDur, blockedDur time.Duration
		for rep := 0; rep < 5; rep++ {
			graph.SetHotPath(graph.HotPathConfig{PushBlock: -1})
			d, err := timed(func() error {
				var err error
				exact, err = bippr.ReversePush(ctx, g, tgt, 0.85, rmax)
				return err
			})
			if err != nil {
				return nil, err
			}
			if rep == 0 || d < exactDur {
				exactDur = d
			}
			graph.SetHotPath(graph.HotPathConfig{})
			d, err = timed(func() error {
				var err error
				blocked, err = bippr.ReversePush(ctx, g, tgt, 0.85, rmax)
				return err
			})
			if err != nil {
				return nil, err
			}
			if rep == 0 || d < blockedDur {
				blockedDur = d
			}
		}
		if exact.MaxResidual >= rmax || blocked.MaxResidual >= rmax {
			return nil, fmt.Errorf("experiments: target %q: residuals %v / %v not below rmax %v",
				label, exact.MaxResidual, blocked.MaxResidual, rmax)
		}
		var drift error
		blocked.Estimates.ForEach(func(v graph.NodeID, val float64) bool {
			if d := val - exact.Estimates.Get(v); d > 2*rmax || d < -2*rmax {
				drift = fmt.Errorf("experiments: target %q: estimate at node %d differs by %v (> 2·rmax)", label, v, d)
				return false
			}
			return true
		})
		if drift == nil {
			exact.Estimates.ForEach(func(v graph.NodeID, val float64) bool {
				if d := val - blocked.Estimates.Get(v); d > 2*rmax || d < -2*rmax {
					drift = fmt.Errorf("experiments: target %q: estimate at node %d differs by %v (> 2·rmax)", label, v, d)
					return false
				}
				return true
			})
		}
		if drift != nil {
			return nil, drift
		}
		speedup := "-"
		if blockedDur > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(exactDur)/float64(blockedDur))
		}
		t.Rows = append(t.Rows,
			[]string{label, "per-edge division", fmt.Sprint(exact.Pushes), fmt.Sprintf("%.3g", exact.MaxResidual), exactDur.Round(time.Microsecond).String(), "1.00x"},
			[]string{label, "blocked reciprocal", fmt.Sprint(blocked.Pushes), fmt.Sprintf("%.3g", blocked.MaxResidual), blockedDur.Round(time.Microsecond).String(), speedup},
		)
	}
	return t, nil
}
