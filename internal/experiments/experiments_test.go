package experiments

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"github.com/cyclerank/cyclerank-go/internal/algo"
)

func reg() *algo.Registry { return algo.NewBuiltinRegistry() }

func TestTableI(t *testing.T) {
	tab, err := TableI(context.Background(), reg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 || len(tab.Headers) != 6 {
		t.Fatalf("shape %dx%d", len(tab.Rows), len(tab.Headers))
	}
	// Paper shape assertions:
	// PR column = global hubs, led by United States.
	if tab.Rows[0][1] != "United States" {
		t.Errorf("PR top1 = %q, want United States", tab.Rows[0][1])
	}
	// CR(Freddie Mercury) column: reference first, then Queen (band).
	if tab.Rows[0][2] != "Freddie Mercury" || tab.Rows[1][2] != "Queen (band)" {
		t.Errorf("CR(FM) column = %v, %v", tab.Rows[0][2], tab.Rows[1][2])
	}
	// PPR(FM) includes the reference at top.
	if tab.Rows[0][3] != "Freddie Mercury" {
		t.Errorf("PPR(FM) top1 = %q", tab.Rows[0][3])
	}
	// CR(Pasta) column: Pasta first, Italian cuisine second.
	if tab.Rows[0][4] != "Pasta" || tab.Rows[1][4] != "Italian cuisine" {
		t.Errorf("CR(Pasta) column = %v, %v", tab.Rows[0][4], tab.Rows[1][4])
	}
	// Hub leak appears somewhere in the PPR(FM) column but never in CR.
	leak := false
	for _, row := range tab.Rows {
		if row[3] == "HIV/AIDS" || row[3] == "United States" {
			leak = true
		}
		if row[2] == "HIV/AIDS" || row[2] == "United States" {
			t.Errorf("CycleRank column contains hub %q", row[2])
		}
	}
	if !leak {
		t.Error("PPR column shows no hub leak; Table I contrast lost")
	}
}

func TestTableII(t *testing.T) {
	tab, err := TableII(context.Background(), reg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][1] != "Good to Great" {
		t.Errorf("PR top1 = %q, want Good to Great", tab.Rows[0][1])
	}
	// Table II excludes the reference item; row 1 of CR(1984) is its
	// closest mutual co-purchase.
	if tab.Rows[0][2] != "Animal Farm" {
		t.Errorf("CR(1984) top1 = %v, want Animal Farm", tab.Rows[0][2])
	}
	for _, row := range tab.Rows {
		if row[2] == "1984" || row[4] == "The Fellowship of the Ring" {
			t.Error("Table II column contains its own reference")
		}
	}
	// Harry Potter appears in PPR(Fellowship) but never in CR columns.
	hp := false
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[5], "Harry Potter") {
			hp = true
		}
		if strings.HasPrefix(row[2], "Harry Potter") || strings.HasPrefix(row[4], "Harry Potter") {
			t.Errorf("CycleRank column contains bestseller %q", row[2])
		}
	}
	if !hp {
		t.Error("PPR(Fellowship) shows no Harry Potter; Table II contrast lost")
	}
}

func TestTableIII(t *testing.T) {
	tab, err := TableIII(context.Background(), reg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Headers) != 7 { // # + 6 language editions
		t.Fatalf("headers = %v", tab.Headers)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Paper row 1 per column: de=Barack Obama, en=CNN, fr=Ère
	// post-vérité, it=Disinformazione, nl=Facebook, pl=Dezinformacja.
	want := []string{"Barack Obama", "CNN", "Ère post-vérité", "Disinformazione", "Facebook", "Dezinformacja"}
	for c, w := range want {
		if tab.Rows[0][c+1] != w {
			t.Errorf("column %d top1 = %q, want %q", c+1, tab.Rows[0][c+1], w)
		}
	}
	// The reference article itself never appears in its own column.
	for _, row := range tab.Rows {
		for c, ed := range tableIIIEditions {
			if row[c+1] == ed.Ref {
				t.Errorf("%s column contains its reference %q", ed.Lang, ed.Ref)
			}
		}
	}
}

func TestRenderers(t *testing.T) {
	tab := &Table{
		ID: "t", Title: "demo",
		Headers: []string{"a", "b"},
		Rows:    [][]string{{"1", "x,y"}, {"2", `q"q`}},
	}
	text := tab.Text()
	if !strings.Contains(text, "demo") || !strings.Contains(text, "x,y") {
		t.Errorf("Text = %q", text)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| a | b |") {
		t.Errorf("Markdown = %q", md)
	}
	csv := tab.CSV()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"q""q"`) {
		t.Errorf("CSV = %q", csv)
	}
}

func TestKSweep(t *testing.T) {
	tab, err := KSweep(context.Background(), "enwiki-2013", "Freddie Mercury", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 { // K = 2, 3, 4
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Cycles monotonically non-decreasing in K.
	if tab.Rows[0][1] > tab.Rows[1][1] && len(tab.Rows[0][1]) >= len(tab.Rows[1][1]) {
		t.Errorf("cycles decreased: %v -> %v", tab.Rows[0][1], tab.Rows[1][1])
	}
	if _, err := KSweep(context.Background(), "enwiki-2013", "nobody", 3); err == nil {
		t.Error("unknown source accepted")
	}
}

func TestBiPPRPersist(t *testing.T) {
	tab, err := BiPPRPersist(context.Background(), "enwiki-2013", "Freddie Mercury", 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 { // computed, disk, memory
		t.Fatalf("rows = %d, want 3 tiers", len(tab.Rows))
	}
	for i, tier := range []string{"computed", "disk", "memory"} {
		if tab.Rows[i][0] != tier {
			t.Errorf("row %d tier %q, want %q", i, tab.Rows[i][0], tier)
		}
	}
	if _, err := BiPPRPersist(context.Background(), "enwiki-2013", "nobody", 0); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestPrunedVsNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("naive enumeration is slow")
	}
	tab, err := PrunedVsNaive(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestPPREngines(t *testing.T) {
	tab, err := PPREngines(context.Background(), "enwiki-2013", "Freddie Mercury")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Exact row reports zero error against itself.
	if tab.Rows[0][1] != "0.00e+00" {
		t.Errorf("exact L1 = %q", tab.Rows[0][1])
	}
}

func TestScoringAblation(t *testing.T) {
	tab, err := ScoringAblation(context.Background(), reg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Headers) != 5 { // # + 4 scorings
		t.Fatalf("headers = %v", tab.Headers)
	}
	// Reference tops every column regardless of σ.
	for c := 1; c < len(tab.Headers); c++ {
		if tab.Rows[0][c] != "Freddie Mercury" {
			t.Errorf("σ column %d top1 = %q", c, tab.Rows[0][c])
		}
	}
}

func TestAgreement(t *testing.T) {
	tab, err := Agreement(context.Background(), reg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 { // C(4,2)
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestAlphaSweep(t *testing.T) {
	tab, err := AlphaSweep(context.Background(), "enwiki-2018", "Freddie Mercury",
		[]string{"United States", "HIV/AIDS"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Longer walks leak more probability onto the tracked hubs, at
	// least up to the standard α=0.85 (beyond that the personalization
	// washes out toward global PageRank and mass spreads over *all*
	// hubs, so strict monotonicity is not expected at the tail).
	mass := func(row int) float64 {
		var m float64
		if _, err := fmt.Sscanf(tab.Rows[row][1], "%f", &m); err != nil {
			t.Fatalf("bad mass cell %q", tab.Rows[row][1])
		}
		return m
	}
	if mass(4) <= mass(0) { // α=0.85 vs α=0.1
		t.Errorf("hub mass did not grow with alpha: %v (0.1) vs %v (0.85)", mass(0), mass(4))
	}
	if _, err := AlphaSweep(context.Background(), "enwiki-2018", "nobody", nil); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := AlphaSweep(context.Background(), "enwiki-2018", "Freddie Mercury", []string{"ghost-hub"}); err == nil {
		t.Error("unknown hub accepted")
	}
}

func TestWeightedAblation(t *testing.T) {
	tab, err := WeightedAblation(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 || len(tab.Headers) != 3 {
		t.Fatalf("shape %dx%d", len(tab.Rows), len(tab.Headers))
	}
	// Weighting mutual interactions must not *increase* the number of
	// broadcast influencers near the top.
	count := func(col int) int {
		n := 0
		for _, row := range tab.Rows {
			if strings.Contains(row[col], "influencer") {
				n++
			}
		}
		return n
	}
	if count(2) > count(1) {
		t.Errorf("weighted PPR has more influencers (%d) than unweighted (%d)", count(2), count(1))
	}
}

func TestScaleSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 7 algorithms on 4 snapshots")
	}
	tab, err := ScaleSweep(context.Background(), reg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if len(tab.Headers) != 3+7 {
		t.Fatalf("headers = %v", tab.Headers)
	}
}

func TestTableIV(t *testing.T) {
	tab, err := TableIV(context.Background(), reg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 || len(tab.Headers) != 5 {
		t.Fatalf("shape %dx%d", len(tab.Rows), len(tab.Headers))
	}
	// The to-Freddie column is his tightly reciprocal community; the
	// global hubs he leaks to must NOT dominate the target view (they
	// point at him rarely relative to their out-neighborhoods).
	for i := 0; i < 5; i++ {
		if cell := tab.Rows[i][1]; cell == "United States" || cell == "HIV/AIDS" {
			t.Errorf("global hub %q ranked top-%d by relevance TO Freddie Mercury", cell, i+1)
		}
	}
	// The from-Freddie column leaks onto a global hub (the PPR bias
	// the paper documents) — the asymmetry Table IV demonstrates.
	leak := false
	for i := 0; i < 5; i++ {
		if tab.Rows[i][2] == "United States" || tab.Rows[i][2] == "HIV/AIDS" {
			leak = true
		}
	}
	if !leak {
		t.Error("from-reference column shows no hub leak; asymmetry demo lost")
	}
}

func TestBiPPRSweep(t *testing.T) {
	tab, err := BiPPRSweep(context.Background(), "enwiki-2018", "Brian May", "Freddie Mercury",
		[]float64{1e-3, 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Smaller rmax must push more and estimate at least as accurately.
	var pushesLoose, pushesTight int
	var errLoose, errTight float64
	if _, err := fmt.Sscanf(tab.Rows[0][1], "%d", &pushesLoose); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscanf(tab.Rows[1][1], "%d", &pushesTight); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscanf(tab.Rows[0][4], "%e", &errLoose); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscanf(tab.Rows[1][4], "%e", &errTight); err != nil {
		t.Fatal(err)
	}
	if pushesTight <= pushesLoose {
		t.Errorf("pushes did not grow as rmax shrank: %d vs %d", pushesLoose, pushesTight)
	}
	if errLoose > 1e-3 || errTight > 1e-4 {
		t.Errorf("errors exceed additive bounds: %g (1e-3), %g (1e-5)", errLoose, errTight)
	}
}
