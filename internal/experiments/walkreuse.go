package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/bippr"
	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// WalkReuse quantifies the walk-endpoint cache: pair queries from a
// *warm source* against new targets re-weight the source's recorded
// walk endpoints instead of re-simulating the walks. Every target's
// reverse-push index is warmed up front, so the fresh/reused pairs of
// rows isolate exactly the walk phase — the half of a cached pair
// query that dominates once indexes are shared (Lofgren's split). The
// estimate column is the point of the table as much as the timings:
// it is identical between the fresh and reused row of each target,
// because recorded chunks fold through the same sorted-count summation
// fresh walks use (the function errors out if they ever differ).
func WalkReuse(ctx context.Context, dataset, source string, targets []string, walks int) (*Table, error) {
	g, err := loadDataset(dataset)
	if err != nil {
		return nil, err
	}
	src, ok := g.NodeByLabel(source)
	if !ok {
		return nil, fmt.Errorf("experiments: source %q not in %s", source, dataset)
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("experiments: walk-reuse needs at least one target")
	}
	if walks == 0 {
		walks = 200000
	}
	tgts := make([]graph.NodeID, len(targets))
	for i, label := range targets {
		id, ok := g.NodeByLabel(label)
		if !ok {
			return nil, fmt.Errorf("experiments: target %q not in %s", label, dataset)
		}
		tgts[i] = id
	}

	est := bippr.NewEstimator(0)
	fresh := bippr.Params{RMax: 1e-4, Walks: walks}
	reuse := fresh
	reuse.ReuseEndpoints = true

	// Warm every target index: the push cost is identical on both
	// sides of the comparison, so paying it outside the timings leaves
	// walk work as the only difference between rows.
	for i, id := range tgts {
		if _, err := est.Index(ctx, g, id, fresh); err != nil {
			return nil, fmt.Errorf("experiments: warming index %q: %w", targets[i], err)
		}
	}
	// Warm the source: the first reuse query simulates the walks once
	// and records their endpoints.
	warmDur, err := timed(func() error {
		_, err := est.Pair(ctx, g, src, tgts[0], reuse)
		return err
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID: "ablation-walk-reuse",
		Title: fmt.Sprintf("Walk-endpoint reuse for source %q on %s (%d walks, rmax=1e-4, indexes warm; recording pass %s)",
			source, dataset, walks, warmDur.Round(time.Microsecond)),
		Headers: []string{"target", "mode", "estimate", "time", "speedup"},
	}
	for i, id := range tgts {
		var freshEst, reusedEst bippr.Estimate
		freshDur, err := timed(func() error {
			var err error
			freshEst, err = est.Pair(ctx, g, src, id, fresh)
			return err
		})
		if err != nil {
			return nil, err
		}
		reuseDur, err := timed(func() error {
			var err error
			reusedEst, err = est.Pair(ctx, g, src, id, reuse)
			return err
		})
		if err != nil {
			return nil, err
		}
		if reusedEst.Value != freshEst.Value {
			return nil, fmt.Errorf("experiments: target %q: reused estimate %v != fresh %v — reuse must be bit-identical",
				targets[i], reusedEst.Value, freshEst.Value)
		}
		if !reusedEst.EndpointsReused {
			return nil, fmt.Errorf("experiments: target %q did not hit the endpoint cache", targets[i])
		}
		speedup := "-"
		if reuseDur > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(freshDur)/float64(reuseDur))
		}
		t.Rows = append(t.Rows,
			[]string{targets[i], "fresh walks", fmt.Sprintf("%.6g", freshEst.Value), freshDur.Round(time.Microsecond).String(), "1.0x"},
			[]string{targets[i], "reused endpoints", fmt.Sprintf("%.6g", reusedEst.Value), reuseDur.Round(time.Microsecond).String(), speedup},
		)
	}
	return t, nil
}
