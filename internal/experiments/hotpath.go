package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/bippr"
	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// bestOf runs fn reps times and returns the fastest duration — the
// right statistic for a bandwidth micro-comparison, where the noise
// (scheduler preemption, cache pollution from the other mode) is
// strictly additive.
func bestOf(reps int, fn func() error) (time.Duration, error) {
	var best time.Duration
	for i := 0; i < reps; i++ {
		d, err := timed(fn)
		if err != nil {
			return 0, err
		}
		if i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// legacyChunkRNG rebuilds the walk RNG the package used before
// per-walk substreams: one math/rand stream per chunk, seeded by
// SplitMix-mixing (seed, source, chunk). rand.NewSource alone runs a
// ~1800-division Lehmer warm-up per chunk, which is most of what the
// substream rewrite deleted.
func legacyChunkRNG(seed int64, source graph.NodeID, chunk int) *rand.Rand {
	x := uint64(seed)*0x9e3779b97f4a7c15 +
		uint64(uint32(source))*0xbf58476d1ce4e5b9 +
		uint64(chunk)*0x2545f4914f6cdd1d
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return rand.New(rand.NewSource(int64(x)))
}

// legacyEndpoint is the pre-substream per-walk stepper: stop test,
// out-edge pick, and a truncated walk stops where it stands. ok is
// false only for walks absorbed by a dangling node.
func legacyEndpoint(g *graph.Graph, rng *rand.Rand, source graph.NodeID, alpha float64, maxSteps int) (graph.NodeID, bool) {
	v := source
	for step := 0; step < maxSteps; step++ {
		if rng.Float64() >= alpha {
			return v, true
		}
		out := g.Out(v)
		if len(out) == 0 {
			return v, false
		}
		v = out[rng.Intn(len(out))]
	}
	return v, true
}

// legacyEstimateSum replays the pre-substream walk phase end to end —
// per-chunk math/rand streams, one walk at a time, per-chunk sorted
// run-length fold, chunk-order reduction — so the walk-batch ablation
// can price this PR's walk path against what the tree shipped before
// it. The estimate differs from the substream steppers only in RNG
// stream (same distribution; the caller checks statistical agreement).
func legacyEstimateSum(ctx context.Context, g *graph.Graph, alpha float64, seed int64, src graph.NodeID, walks int, weight *bippr.Vector, workers int) (float64, error) {
	const chunkSize = 128
	maxSteps := bippr.DefaultMaxSteps
	chunks := (walks + chunkSize - 1) / chunkSize
	if workers < 1 {
		workers = 1
	}
	if workers > chunks {
		workers = chunks
	}
	partial := make([]float64, chunks)
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		cancelled atomic.Bool
	)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ends []graph.NodeID
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				select {
				case <-ctx.Done():
					cancelled.Store(true)
					return
				default:
				}
				count := chunkSize
				if rem := walks - c*chunkSize; rem < count {
					count = rem
				}
				rng := legacyChunkRNG(seed, src, c)
				ends = ends[:0]
				for w := 0; w < count; w++ {
					if end, ok := legacyEndpoint(g, rng, src, alpha, maxSteps); ok {
						ends = append(ends, end)
					}
				}
				slices.Sort(ends)
				var sum float64
				for j := 0; j < len(ends); {
					k := j + 1
					for k < len(ends) && ends[k] == ends[j] {
						k++
					}
					sum += float64(k-j) * weight.Get(ends[j])
					j = k
				}
				partial[c] = sum
			}
		}()
	}
	wg.Wait()
	if cancelled.Load() {
		return 0, fmt.Errorf("experiments: legacy walks cancelled: %w", ctx.Err())
	}
	var sum float64
	for _, p := range partial {
		sum += p
	}
	return sum / float64(walks), nil
}

// WalkBatch isolates this PR's walk phase against two baselines on the
// pure walk workload (EstimateSum over a fixed weight vector): the
// pre-substream legacy path (per-chunk math/rand streams, replayed
// above) anchors the speedup column, and the serial per-walk substream
// stepper is the batched cohort's equivalence reference. The substream
// steppers consume identical per-walk RNG draws, so their estimate
// column must match bit-for-bit — the function errors out if it ever
// differs, making the table an equivalence proof as much as a timing.
// The legacy stream is different RNG, so it is held only to
// statistical agreement (0.5%% at the default 200k walks).
func WalkBatch(ctx context.Context, dataset, source string, walks int) (*Table, error) {
	g, err := loadDataset(dataset)
	if err != nil {
		return nil, err
	}
	src, ok := g.NodeByLabel(source)
	if !ok {
		return nil, fmt.Errorf("experiments: source %q not in %s", source, dataset)
	}
	if walks == 0 {
		walks = 200000
	}
	// A deterministic non-uniform weight vector stands in for a target
	// index's residuals; the fold cost is identical either way.
	values := make([]float64, g.NumNodes())
	for i := range values {
		values[i] = float64(i%13) * 1e-5
	}
	wv := bippr.NewDenseVector(values)

	serial := bippr.NewWalkEstimator(g, 0.85, 42, 0)
	serial.SetBatchStepping(false)
	batched := bippr.NewWalkEstimator(g, 0.85, 42, 0)

	t := &Table{
		ID: "ablation-walk-batch",
		Title: fmt.Sprintf("Walk phase: legacy chunk-RNG vs per-walk substreams vs batched cohort, source %q on %s (%d walks, alpha=0.85)",
			source, dataset, walks),
		Headers: []string{"workers", "mode", "estimate", "walk phase", "vs legacy"},
	}
	for _, workers := range []int{1, 4} {
		var legacyEst, serialEst, batchedEst float64
		legacyDur, err := bestOf(3, func() error {
			var err error
			legacyEst, err = legacyEstimateSum(ctx, g, 0.85, 42, src, walks, wv, workers)
			return err
		})
		if err != nil {
			return nil, err
		}
		serialDur, err := bestOf(3, func() error {
			var err error
			serialEst, err = serial.EstimateSum(ctx, src, walks, wv, workers)
			return err
		})
		if err != nil {
			return nil, err
		}
		batchedDur, err := bestOf(3, func() error {
			var err error
			batchedEst, err = batched.EstimateSum(ctx, src, walks, wv, workers)
			return err
		})
		if err != nil {
			return nil, err
		}
		if batchedEst != serialEst {
			return nil, fmt.Errorf("experiments: workers=%d: batched estimate %v != serial %v — stepping must be bit-identical",
				workers, batchedEst, serialEst)
		}
		if diff := legacyEst - batchedEst; diff > 0.005*batchedEst || diff < -0.005*batchedEst {
			return nil, fmt.Errorf("experiments: workers=%d: legacy estimate %v disagrees with substream %v beyond 0.5%%",
				workers, legacyEst, batchedEst)
		}
		speedup := func(d time.Duration) string {
			if d <= 0 {
				return "-"
			}
			return fmt.Sprintf("%.1fx", float64(legacyDur)/float64(d))
		}
		w := fmt.Sprint(workers)
		t.Rows = append(t.Rows,
			[]string{w, "legacy chunk-rng", fmt.Sprintf("%.6g", legacyEst), legacyDur.Round(time.Microsecond).String(), "1.0x"},
			[]string{w, "per-walk", fmt.Sprintf("%.6g", serialEst), serialDur.Round(time.Microsecond).String(), speedup(serialDur)},
			[]string{w, "batched", fmt.Sprintf("%.6g", batchedEst), batchedDur.Round(time.Microsecond).String(), speedup(batchedDur)},
		)
	}
	return t, nil
}

// EndpointCodec sizes one real walk recording under both on-disk
// framings: the legacy fixed-width v1 layout and the delta-varint v2
// the cache now writes. Both decoders must reproduce the recording
// exactly — the fold column is computed from each decoded set and the
// function errors out on any mismatch — and v2 must come in at least
// 1.8x smaller, the bound the codec upgrade is specified to hold on
// this dataset.
func EndpointCodec(ctx context.Context, dataset, source string, walks int) (*Table, error) {
	g, err := loadDataset(dataset)
	if err != nil {
		return nil, err
	}
	src, ok := g.NodeByLabel(source)
	if !ok {
		return nil, fmt.Errorf("experiments: source %q not in %s", source, dataset)
	}
	if walks == 0 {
		walks = 200000
	}
	w := bippr.NewWalkEstimator(g, 0.85, 42, 0)
	set, err := w.Endpoints(ctx, src, walks, 0)
	if err != nil {
		return nil, err
	}
	art := bippr.EndpointArtifact{Source: src, Alpha: 0.85, Seed: 42, MaxSteps: bippr.DefaultMaxSteps, Set: set}
	values := make([]float64, g.NumNodes())
	for i := range values {
		values[i] = float64(i%13) * 1e-5
	}
	wv := bippr.NewDenseVector(values)
	wantFold := set.EstimateSum(wv)

	type codec struct {
		name   string
		encode func(bippr.EndpointArtifact) ([]byte, error)
	}
	t := &Table{
		ID: "ablation-ep-codec",
		Title: fmt.Sprintf("Endpoint artifact codec v1 vs v2 for source %q on %s (%d walks, %d recorded pairs)",
			source, dataset, walks, set.NonZeros()),
		Headers: []string{"codec", "bytes", "bytes/pair", "encode", "decode", "vs v1"},
	}
	var v1Size int
	for _, c := range []codec{{"v1 fixed-width", bippr.EncodeEndpointsV1}, {"v2 delta-varint", bippr.EncodeEndpoints}} {
		var data []byte
		encDur, err := bestOf(5, func() error {
			var err error
			data, err = c.encode(art)
			return err
		})
		if err != nil {
			return nil, err
		}
		var decoded bippr.EndpointArtifact
		decDur, err := bestOf(5, func() error {
			var err error
			decoded, err = bippr.DecodeEndpointsSized(data, g.NumNodes())
			return err
		})
		if err != nil {
			return nil, err
		}
		if fold := decoded.Set.EstimateSum(wv); fold != wantFold {
			return nil, fmt.Errorf("experiments: %s: decoded fold %v != recorded %v — persistence must be bit-identical",
				c.name, fold, wantFold)
		}
		ratio := "1.0x"
		if v1Size == 0 {
			v1Size = len(data)
		} else {
			r := float64(v1Size) / float64(len(data))
			if r < 1.8 {
				return nil, fmt.Errorf("experiments: v2 artifact only %.2fx smaller than v1 (%d vs %d bytes), want >= 1.8x",
					r, v1Size, len(data))
			}
			ratio = fmt.Sprintf("%.1fx smaller", r)
		}
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprint(len(data)),
			fmt.Sprintf("%.2f", float64(len(data))/float64(set.NonZeros())),
			encDur.Round(time.Microsecond).String(),
			decDur.Round(time.Microsecond).String(),
			ratio,
		})
	}
	return t, nil
}

// CSRLayout compares reverse pushes run directly over the original
// CSR (a WithoutLayout copy) against the degree-descending remapped
// view every built graph now carries. Both runs drive residuals below
// rmax — the function checks the invariant on each — so the timing
// difference is purely memory behaviour: the mapped frontier's hub
// revisits land in a compact array prefix. The title reports the
// footprint both ways, because the layout view is residency capacity
// planning must see (MemoryFootprint includes it).
func CSRLayout(ctx context.Context, dataset string, targets []string, rmax float64) (*Table, error) {
	g, err := loadDataset(dataset)
	if err != nil {
		return nil, err
	}
	if g.Layout() == nil {
		return nil, fmt.Errorf("experiments: %s has no layout view", dataset)
	}
	bare := g.WithoutLayout()
	if rmax == 0 {
		rmax = 1e-6
	}
	t := &Table{
		ID: "ablation-csr-layout",
		Title: fmt.Sprintf("Reverse push over original vs degree-remapped CSR on %s (rmax=%.0e; footprint %d bytes of which layout %d)",
			dataset, rmax, g.MemoryFootprint(), g.LayoutBytes()),
		Headers: []string{"target", "mode", "pushes", "max residual", "push time", "speedup"},
	}
	for _, label := range targets {
		tgt, ok := g.NodeByLabel(label)
		if !ok {
			return nil, fmt.Errorf("experiments: target %q not in %s", label, dataset)
		}
		var direct, mapped *bippr.TargetIndex
		directDur, err := bestOf(3, func() error {
			var err error
			direct, err = bippr.ReversePush(ctx, bare, tgt, 0.85, rmax)
			return err
		})
		if err != nil {
			return nil, err
		}
		mappedDur, err := bestOf(3, func() error {
			var err error
			mapped, err = bippr.ReversePush(ctx, g, tgt, 0.85, rmax)
			return err
		})
		if err != nil {
			return nil, err
		}
		for mode, idx := range map[string]*bippr.TargetIndex{"original": direct, "remapped": mapped} {
			if idx.MaxResidual >= rmax {
				return nil, fmt.Errorf("experiments: target %q %s push left residual %v >= rmax %v",
					label, mode, idx.MaxResidual, rmax)
			}
		}
		speedup := "-"
		if mappedDur > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(directDur)/float64(mappedDur))
		}
		t.Rows = append(t.Rows,
			[]string{label, "original ids", fmt.Sprint(direct.Pushes), fmt.Sprintf("%.3g", direct.MaxResidual), directDur.Round(time.Microsecond).String(), "1.0x"},
			[]string{label, "remapped ids", fmt.Sprint(mapped.Pushes), fmt.Sprintf("%.3g", mapped.MaxResidual), mappedDur.Round(time.Microsecond).String(), speedup},
		)
	}
	return t, nil
}
