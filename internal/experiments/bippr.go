package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/bippr"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/pagerank"
)

// TableIV extends the paper's comparison with the target-node
// workload the bidirectional subsystem opens: top-5 nodes by
// relevance TO a reference, side by side with the forward Personalized
// PageRank view FROM the same reference, on the Wikipedia and Amazon
// graphs. The asymmetry between the two columns of a pair is the
// point: who Freddie Mercury endorses differs from who endorses him.
func TableIV(ctx context.Context, reg *algo.Registry) (*Table, error) {
	refs := []struct {
		dataset string
		ref     string
	}{
		{"enwiki-2018", "Freddie Mercury"},
		{"amazon", "1984"},
	}
	t := &Table{
		ID:      "table-4",
		Title:   "Top-5 by relevance TO the reference (ppr-target, rmax=1e-5) vs FROM it (PPR, α=0.85)",
		Headers: []string{"#"},
	}
	columns := make([][]string, 0, 2*len(refs))
	for _, r := range refs {
		g, err := loadDataset(r.dataset)
		if err != nil {
			return nil, err
		}
		// Exclude the reference itself: its self-relevance dominates
		// both directions and carries no information.
		toRef, _, err := topN(ctx, reg, algo.NamePPRTarget, g,
			algo.Params{Target: r.ref, RMax: 1e-5}, TopK+1)
		if err != nil {
			return nil, err
		}
		fromRef, _, err := topN(ctx, reg, algo.NamePPR, g,
			algo.Params{Source: r.ref, Alpha: 0.85}, TopK+1)
		if err != nil {
			return nil, err
		}
		columns = append(columns,
			pad(dropLabel(toRef, r.ref, TopK), TopK),
			pad(dropLabel(fromRef, r.ref, TopK), TopK))
		t.Headers = append(t.Headers,
			fmt.Sprintf("to %s (%s)", r.ref, r.dataset),
			fmt.Sprintf("from %s (%s)", r.ref, r.dataset))
	}
	for i := 0; i < TopK; i++ {
		row := []string{fmt.Sprintf("%d", i+1)}
		for _, col := range columns {
			row = append(row, col[i])
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// BiPPRSweep quantifies the bidirectional pair estimator's
// accuracy/cost trade-off (experiment A7): for a fixed (source,
// target) pair, it sweeps the reverse-push threshold rmax and reports
// push cost, walk cost, the estimate's error against a
// high-precision forward push, and the per-query speedup over that
// forward computation.
func BiPPRSweep(ctx context.Context, dataset, source, target string, rmaxs []float64) (*Table, error) {
	g, err := loadDataset(dataset)
	if err != nil {
		return nil, err
	}
	src, ok := g.NodeByLabel(source)
	if !ok {
		return nil, fmt.Errorf("experiments: source %q not in %s", source, dataset)
	}
	tgt, ok := g.NodeByLabel(target)
	if !ok {
		return nil, fmt.Errorf("experiments: target %q not in %s", target, dataset)
	}
	if len(rmaxs) == 0 {
		rmaxs = []float64{1e-3, 1e-4, 1e-5, 1e-6}
	}

	// Ground truth: the full forward push at high precision, timed —
	// the cost a platform without the bidirectional subsystem pays for
	// one pair answer.
	var truth float64
	fwdDur, err := timed(func() error {
		res, err := pagerank.PushPPR(ctx, g, pagerank.PushParams{
			Alpha: 0.15, Epsilon: 1e-9, Seeds: []graph.NodeID{src},
		})
		if err != nil {
			return err
		}
		truth = res.Score(tgt)
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID: "ablation-bippr",
		Title: fmt.Sprintf("BiPPR accuracy/cost vs rmax for π(%q → %q) on %s; forward push baseline %s (π=%.3g)",
			source, target, dataset, fwdDur.Round(time.Microsecond), truth),
		Headers: []string{"rmax", "pushes", "walks", "estimate", "|error|", "time", "speedup"},
	}
	for _, rmax := range rmaxs {
		var est bippr.Estimate
		dur, err := timed(func() error {
			var err error
			est, err = bippr.Bidirectional(ctx, g, src, tgt, bippr.Params{RMax: rmax})
			return err
		})
		if err != nil {
			return nil, err
		}
		speedup := "-"
		if dur > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(fwdDur)/float64(dur))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0e", rmax),
			fmt.Sprintf("%d", est.Pushes),
			fmt.Sprintf("%d", est.Walks),
			fmt.Sprintf("%.6g", est.Value),
			fmt.Sprintf("%.2e", math.Abs(est.Value-truth)),
			dur.Round(time.Microsecond).String(),
			speedup,
		})
	}
	return t, nil
}

// BiPPRSharding measures the walk-phase speedup of the sharded worker
// pool: a cached pair query (the index is built once, outside the
// timings) is repeated at increasing pool sizes. The estimate column
// is the point of the table as much as the timings — it is identical
// on every row, because sharded walks are bit-identical to serial.
func BiPPRSharding(ctx context.Context, dataset, source, target string, workerCounts []int) (*Table, error) {
	g, err := loadDataset(dataset)
	if err != nil {
		return nil, err
	}
	src, ok := g.NodeByLabel(source)
	if !ok {
		return nil, fmt.Errorf("experiments: source %q not in %s", source, dataset)
	}
	tgt, ok := g.NodeByLabel(target)
	if !ok {
		return nil, fmt.Errorf("experiments: target %q not in %s", target, dataset)
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	const shardWalks = 50000

	est := bippr.NewEstimator(0)
	base := bippr.Params{RMax: 1e-4, Walks: shardWalks}
	// Warm the index cache so every timed run measures walks only.
	if _, err := est.Pair(ctx, g, src, tgt, base); err != nil {
		return nil, err
	}

	t := &Table{
		ID: "ablation-bippr-sharding",
		Title: fmt.Sprintf("Sharded walk workers for π(%q → %q) on %s (%d walks, cached index, GOMAXPROCS=%d)",
			source, target, dataset, shardWalks, runtime.GOMAXPROCS(0)),
		// "effective" is the pool size that actually ran: requests are
		// clamped by GOMAXPROCS, so on a small machine the speedup
		// column reads 1.00x because the rows ran serial, not because
		// sharding is free.
		Headers: []string{"workers", "effective", "estimate", "time", "speedup"},
	}
	// The speedup baseline is always the serial run, measured once up
	// front — workerCounts is caller-supplied and need not contain 1
	// (or contain it first).
	serial := base
	serial.Workers = 1
	serialDur, err := timed(func() error {
		_, err := est.Pair(ctx, g, src, tgt, serial)
		return err
	})
	if err != nil {
		return nil, err
	}
	for _, workers := range workerCounts {
		p := base
		p.Workers = workers
		var e bippr.Estimate
		dur, err := timed(func() error {
			var err error
			e, err = est.Pair(ctx, g, src, tgt, p)
			return err
		})
		if err != nil {
			return nil, err
		}
		speedup := "-"
		if dur > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(serialDur)/float64(dur))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", workers),
			fmt.Sprintf("%d", bippr.EffectiveWorkers(workers, shardWalks)),
			fmt.Sprintf("%.6g", e.Value),
			dur.Round(time.Microsecond).String(),
			speedup,
		})
	}
	return t, nil
}
