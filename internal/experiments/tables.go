package experiments

import (
	"context"
	"fmt"

	"github.com/cyclerank/cyclerank-go/internal/algo"
)

// TopK is the list depth used by the paper's tables.
const TopK = 5

// TableI reproduces Table I: top-5 articles by PageRank (α=0.85),
// CycleRank (K=3, σ=exp) and Personalized PageRank (α=0.3) on the
// English Wikipedia 2018-03-01 snapshot, with reference articles
// "Freddie Mercury" and "Pasta".
func TableI(ctx context.Context, reg *algo.Registry) (*Table, error) {
	g, err := loadDataset("enwiki-2018")
	if err != nil {
		return nil, err
	}

	pr, _, err := topN(ctx, reg, algo.NamePageRank, g, algo.Params{Alpha: 0.85}, TopK)
	if err != nil {
		return nil, err
	}

	type cols struct{ cr, ppr []string }
	perRef := map[string]cols{}
	for _, ref := range []string{"Freddie Mercury", "Pasta"} {
		cr, _, err := topN(ctx, reg, algo.NameCycleRank, g,
			algo.Params{Source: ref, K: 3, Scoring: "exp"}, TopK)
		if err != nil {
			return nil, err
		}
		ppr, _, err := topN(ctx, reg, algo.NamePPR, g,
			algo.Params{Source: ref, Alpha: 0.3}, TopK)
		if err != nil {
			return nil, err
		}
		perRef[ref] = cols{cr: pad(cr, TopK), ppr: pad(ppr, TopK)}
	}

	t := &Table{
		ID: "table-1",
		Title: "Top-5 by PR (α=0.85), CR (K=3, σ=e^-n) and PPR (α=0.3) on enwiki 2018-03-01; " +
			"references: Freddie Mercury, Pasta",
		Headers: []string{"#", "PageRank",
			"Cyclerank (Freddie Mercury)", "Pers.PageRank (Freddie Mercury)",
			"Cyclerank (Pasta)", "Pers.PageRank (Pasta)"},
	}
	fm, pasta := perRef["Freddie Mercury"], perRef["Pasta"]
	for i := 0; i < TopK; i++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i+1), pr[i],
			fm.cr[i], fm.ppr[i],
			pasta.cr[i], pasta.ppr[i],
		})
	}
	return t, nil
}

// TableII reproduces Table II: top-5 items by PageRank (α=0.85),
// CycleRank (K=5, σ=exp) and Personalized PageRank (α=0.85) on the
// Amazon co-purchase graph, with reference items "1984" and "The
// Fellowship of the Ring".
func TableII(ctx context.Context, reg *algo.Registry) (*Table, error) {
	g, err := loadDataset("amazon")
	if err != nil {
		return nil, err
	}

	pr, _, err := topN(ctx, reg, algo.NamePageRank, g, algo.Params{Alpha: 0.85}, TopK)
	if err != nil {
		return nil, err
	}

	// Unlike Table I, the paper's Table II excludes the reference item
	// from its personalized columns; mirror that.
	type cols struct{ cr, ppr []string }
	perRef := map[string]cols{}
	for _, ref := range []string{"1984", "The Fellowship of the Ring"} {
		cr, _, err := topN(ctx, reg, algo.NameCycleRank, g,
			algo.Params{Source: ref, K: 5, Scoring: "exp"}, TopK+1)
		if err != nil {
			return nil, err
		}
		ppr, _, err := topN(ctx, reg, algo.NamePPR, g,
			algo.Params{Source: ref, Alpha: 0.85}, TopK+1)
		if err != nil {
			return nil, err
		}
		perRef[ref] = cols{
			cr:  pad(dropLabel(cr, ref, TopK), TopK),
			ppr: pad(dropLabel(ppr, ref, TopK), TopK),
		}
	}

	t := &Table{
		ID: "table-2",
		Title: "Top-5 by PR (α=0.85), CR (K=5, σ=e^-n) and PPR (α=0.85) on the Amazon " +
			"co-purchase graph; references: 1984, The Fellowship of the Ring",
		Headers: []string{"#", "PageRank",
			"Cyclerank (1984)", "Pers.PageRank (1984)",
			"Cyclerank (Fellowship)", "Pers.PageRank (Fellowship)"},
	}
	d1984, fotr := perRef["1984"], perRef["The Fellowship of the Ring"]
	for i := 0; i < TopK; i++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i+1), pr[i],
			d1984.cr[i], d1984.ppr[i],
			fotr.cr[i], fotr.ppr[i],
		})
	}
	return t, nil
}

// dropLabel filters one label out of a ranking and truncates to n.
func dropLabel(labels []string, drop string, n int) []string {
	out := make([]string, 0, n)
	for _, l := range labels {
		if l != drop {
			out = append(out, l)
		}
	}
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// tableIIIEditions lists the language editions and localized reference
// titles of Table III, in the paper's column order.
var tableIIIEditions = []struct {
	Lang string
	Ref  string
}{
	{"de", "Fake News"},
	{"en", "Fake news"},
	{"fr", "Fake news"},
	{"it", "Fake news"},
	{"nl", "Nepnieuws"},
	{"pl", "Fake news"},
}

// TableIII reproduces Table III: top-5 articles by CycleRank (K=3,
// σ=exp) from the "Fake news" article across six Wikipedia language
// editions (de, en, fr, it, nl, pl), 2018 snapshots.
func TableIII(ctx context.Context, reg *algo.Registry) (*Table, error) {
	t := &Table{
		ID:      "table-3",
		Title:   "Top-5 by Cyclerank (K=3, σ=e^-n) from the Fake-news article across language editions (2018)",
		Headers: []string{"#"},
	}
	columns := make([][]string, 0, len(tableIIIEditions))
	for _, ed := range tableIIIEditions {
		g, err := loadDataset(fmt.Sprintf("%swiki-2018", ed.Lang))
		if err != nil {
			return nil, err
		}
		top, _, err := topN(ctx, reg, algo.NameCycleRank, g,
			algo.Params{Source: ed.Ref, K: 3, Scoring: "exp"}, TopK+1)
		if err != nil {
			return nil, err
		}
		// The paper's Table III excludes the reference article itself.
		filtered := make([]string, 0, TopK)
		for _, l := range top {
			if l != ed.Ref {
				filtered = append(filtered, l)
			}
		}
		if len(filtered) > TopK {
			filtered = filtered[:TopK]
		}
		columns = append(columns, pad(filtered, TopK))
		t.Headers = append(t.Headers, fmt.Sprintf("%s (%s)", ed.Ref, ed.Lang))
	}
	for i := 0; i < TopK; i++ {
		row := []string{fmt.Sprintf("%d", i+1)}
		for _, col := range columns {
			row = append(row, col[i])
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
