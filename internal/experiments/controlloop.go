package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/datasets"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
	"github.com/cyclerank/cyclerank-go/internal/task"
)

// controlLoopWork is the synthetic per-task run time the ablation's
// "spin" algorithm sleeps for. Long enough to dominate scheduler
// overhead by orders of magnitude, short enough that the whole
// ablation — three modes, warmups and bursts included — stays under a
// second. spinFast is the sub-SLO variant the slo-gate mode warms its
// calibrator with, so the warmup itself does not breach the objective
// it is about to demonstrate.
const (
	controlLoopWork = 12 * time.Millisecond
	controlLoopFast = time.Millisecond
)

// spinRegistry registers the two synthetic algorithms the ablation
// drives: fixed-duration sleeps standing in for real query work.
func spinRegistry() *algo.Registry {
	reg := algo.NewRegistry()
	for _, a := range []struct {
		name string
		d    time.Duration
	}{{"spin", controlLoopWork}, {"spin-fast", controlLoopFast}} {
		d := a.d
		reg.Register(algo.Func{
			AlgoName: a.name,
			AlgoDesc: fmt.Sprintf("sleeps %s; stands in for real query work", d),
			RunFunc: func(ctx context.Context, gr *graph.Graph, p algo.Params) (*ranking.Result, error) {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				return ranking.NewResult("spin", gr, make([]float64, gr.NumNodes()))
			},
		})
	}
	return reg
}

// ControlLoop contrasts a statically-limited serving tier against the
// closed control loop on an identical synthetic workload: a warmup of
// sequential interactive tasks that feeds the units/ms calibrator and
// the latency window, then a burst of single-task submissions issued
// back-to-back without waiting.
//
//   - static: a fixed interactive-slot limit and nothing else. The
//     burst sheds on occupancy ("slots") once the workers are busy,
//     exactly as many as the slots can't hold.
//   - slo-gate: a tail-latency objective far below the slow task's
//     run time. One slow task after the fast warmup breaches the p99,
//     so the ENTIRE burst sheds with reason "slo" while occupancy is
//     cold — the control loop refuses to dig the hole deeper.
//   - calibrated-ms: no slot or SLO limit, only a backlog cap
//     denominated in predicted milliseconds. Admissions are priced by
//     the warmup-learned rate, and the Retry-After hint is the
//     predicted drain time of the admitted backlog, not the
//     configured floor.
//
// Each mode's row reports what was learned and what was shed; the
// function errors when a mode sheds for the wrong reason, when the
// slo gate lets occupancy fill, or when the calibrated hint does not
// rise above the floor — the table is the control loop's behavioural
// proof as much as its measurement.
func ControlLoop(ctx context.Context, warmup, burst int) (*Table, error) {
	if warmup <= 0 {
		warmup = 8
	}
	if burst <= 0 {
		burst = 12
	}
	g, err := datasets.CompleteDigraph(10)
	if err != nil {
		return nil, err
	}
	reg := spinRegistry()

	floor := time.Millisecond
	slowSpec := task.Spec{Dataset: "demo", Algorithm: "spin"}
	fastSpec := task.Spec{Dataset: "demo", Algorithm: "spin-fast"}
	modes := []struct {
		name       string
		admission  task.AdmissionConfig
		warmupSpec task.Spec
		// breach counts slow tasks run after the warmup to push the
		// windowed p99 over the SLO before the burst.
		breach int
		// wantReason is the only shed reason the mode may produce.
		wantReason string
	}{
		{
			name: "static",
			admission: task.AdmissionConfig{
				InteractiveSlots: 2,
				RetryAfter:       floor,
			},
			warmupSpec: slowSpec,
			wantReason: "slots",
		},
		{
			name: "slo-gate",
			admission: task.AdmissionConfig{
				InteractiveSlots: 64, // far above the burst: only the SLO can shed
				SLOInteractive:   controlLoopWork / 4,
				RetryAfter:       floor,
			},
			warmupSpec: fastSpec,
			breach:     1,
			wantReason: "slo",
		},
		{
			name: "calibrated-ms",
			admission: task.AdmissionConfig{
				MaxBacklogMS: 4 * float64(controlLoopWork/time.Millisecond),
				RetryAfter:   floor,
			},
			warmupSpec: slowSpec,
			wantReason: "backlog",
		},
	}

	t := &Table{
		ID:      "ablation-control-loop",
		Title:   fmt.Sprintf("serving-tier control loop: static limits vs closed loop (%d warmup + %d burst tasks of %s)", warmup, burst, controlLoopWork),
		Headers: []string{"mode", "learned units/ms", "p99 ms", "admitted", "shed", "reason", "retry-after"},
	}

	for _, mode := range modes {
		row, err := func() ([]string, error) {
			dir, err := os.MkdirTemp("", "control-loop-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			store, err := datastore.Open(dir)
			if err != nil {
				return nil, err
			}
			s, err := task.NewScheduler(task.SchedulerConfig{
				Registry:  reg,
				Store:     store,
				Workers:   2,
				Load:      func(string) (*graph.Graph, error) { return g, nil },
				Admission: mode.admission,
			})
			if err != nil {
				return nil, err
			}
			defer func() {
				sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				s.Shutdown(sctx)
			}()
			// Load the dataset before the first submission so every
			// estimate — including the one seeding the EWMA — is priced
			// from real graph stats, not the pre-load fallback (which
			// would anchor the learned rate orders of magnitude high).
			if _, err := s.LoadGraph(mode.warmupSpec.Dataset); err != nil {
				return nil, err
			}

			// Warmup: sequential tasks feed the calibrator's EWMA and the
			// latency window the slo gate reads.
			runOne := func(spec task.Spec, what string) error {
				id, _, err := s.Submit([]task.Spec{spec})
				if err != nil {
					return fmt.Errorf("%s: %s submit: %w", mode.name, what, err)
				}
				if _, err := s.WaitQuerySet(ctx, id); err != nil {
					return fmt.Errorf("%s: %s wait: %w", mode.name, what, err)
				}
				return nil
			}
			for i := 0; i < warmup; i++ {
				if err := runOne(mode.warmupSpec, fmt.Sprintf("warmup %d", i)); err != nil {
					return nil, err
				}
			}
			cal := s.CalibrationSnapshot()[task.FamilyOther]
			if cal.Observations < uint64(warmup) {
				return nil, fmt.Errorf("%s: calibrator saw %d observations after %d warmup tasks",
					mode.name, cal.Observations, warmup)
			}
			for i := 0; i < mode.breach; i++ {
				if err := runOne(slowSpec, fmt.Sprintf("breach %d", i)); err != nil {
					return nil, err
				}
			}
			if mode.breach > 0 {
				// The breach sample lands in the latency window when the
				// executor finishes bookkeeping, which may trail WaitQuerySet
				// by a scheduling beat — poll until the gate actually sees it.
				slo := float64(mode.admission.SLOInteractive) / float64(time.Millisecond)
				deadline := time.Now().Add(5 * time.Second)
				for s.AdmissionStats().InteractiveP99MS <= slo {
					if time.Now().After(deadline) {
						return nil, fmt.Errorf("%s: p99 never crossed the %vms objective", mode.name, slo)
					}
					time.Sleep(time.Millisecond)
				}
			}

			// Burst: submit back-to-back without waiting, count the sheds.
			var admitted []string
			var shed int
			var lastShed *task.ShedError
			for i := 0; i < burst; i++ {
				id, _, err := s.Submit([]task.Spec{slowSpec})
				if err == nil {
					admitted = append(admitted, id)
					continue
				}
				var se *task.ShedError
				if !errors.As(err, &se) {
					return nil, fmt.Errorf("%s: burst submit %d: %w", mode.name, i, err)
				}
				if se.Reason != mode.wantReason {
					return nil, fmt.Errorf("%s: shed with reason %q, want %q",
						mode.name, se.Reason, mode.wantReason)
				}
				shed++
				lastShed = se
			}
			if shed == 0 {
				return nil, fmt.Errorf("%s: burst of %d shed nothing", mode.name, burst)
			}
			stats := s.AdmissionStats()
			switch mode.name {
			case "slo-gate":
				// The whole point: the breach fires before any occupancy
				// limit, so nothing from the burst may be running.
				if len(admitted) != 0 || stats.Inflight != 0 {
					return nil, fmt.Errorf("slo-gate: %d admitted, %d in flight under a breached SLO",
						len(admitted), stats.Inflight)
				}
			case "static":
				if stats.ShedSLO != 0 {
					return nil, fmt.Errorf("static: %d slo sheds without an SLO configured", stats.ShedSLO)
				}
			case "calibrated-ms":
				// The hint must be the predicted drain of the admitted
				// backlog — above the floor, far below the cap.
				if lastShed.RetryAfter <= floor || lastShed.RetryAfter >= time.Second {
					return nil, fmt.Errorf("calibrated-ms: retry-after %s not drain-derived (floor %s)",
						lastShed.RetryAfter, floor)
				}
			}
			for _, id := range admitted {
				if _, err := s.WaitQuerySet(ctx, id); err != nil {
					return nil, fmt.Errorf("%s: burst drain: %w", mode.name, err)
				}
			}
			hint := "-"
			if lastShed != nil {
				hint = lastShed.RetryAfter.Round(time.Millisecond).String()
			}
			return []string{
				mode.name,
				fmt.Sprintf("%.1f", cal.UnitsPerMS),
				fmt.Sprintf("%.1f", stats.InteractiveP99MS),
				fmt.Sprint(len(admitted)),
				fmt.Sprint(shed),
				mode.wantReason,
				hint,
			}, nil
		}()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
