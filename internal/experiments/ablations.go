package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/core"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/pagerank"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
)

// KSweep measures CycleRank's cost and yield as the maximum cycle
// length K grows (experiment A1): cycles found, nodes scored and wall
// time per K on the English Wikipedia snapshot.
func KSweep(ctx context.Context, dataset, source string, maxK int) (*Table, error) {
	g, err := loadDataset(dataset)
	if err != nil {
		return nil, err
	}
	src, ok := g.NodeByLabel(source)
	if !ok {
		return nil, fmt.Errorf("experiments: source %q not in %s", source, dataset)
	}
	t := &Table{
		ID:      "ablation-k-sweep",
		Title:   fmt.Sprintf("CycleRank vs K on %s (reference %q)", dataset, source),
		Headers: []string{"K", "cycles", "nodes scored", "time"},
	}
	for k := 2; k <= maxK; k++ {
		var res *ranking.Result
		dur, err := timed(func() error {
			var err error
			res, err = core.Compute(ctx, g, src, core.Params{K: k})
			return err
		})
		if err != nil {
			return nil, err
		}
		scored := 0
		for _, s := range res.Scores {
			if s > 0 {
				scored++
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", res.CyclesFound),
			fmt.Sprintf("%d", scored),
			dur.Round(time.Microsecond).String(),
		})
	}
	return t, nil
}

// PrunedVsNaive quantifies the value of CycleRank's distance pruning
// (experiment A2) on dense random graphs where naive enumeration is
// still feasible.
func PrunedVsNaive(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "ablation-pruned-vs-naive",
		Title:   "CycleRank pruned enumerator vs naive oracle (Erdős–Rényi graphs, K=4)",
		Headers: []string{"n", "edges", "cycles", "pruned", "naive", "speedup"},
	}
	cat, err := loadDataset("er-dense") // 500 nodes, p=0.05
	if err != nil {
		return nil, err
	}
	sub := []int{100, 200, 400}
	for _, n := range sub {
		g := subgraphPrefix(cat, n)
		src := graph.NodeID(0)
		var fast *ranking.Result
		fastDur, err := timed(func() error {
			var err error
			fast, err = core.Compute(ctx, g, src, core.Params{K: 4})
			return err
		})
		if err != nil {
			return nil, err
		}
		var slowCycles int64
		slowDur, err := timed(func() error {
			res, _, err := core.NaiveScores(g, src, core.Params{K: 4})
			if err != nil {
				return err
			}
			slowCycles = res.CyclesFound
			return nil
		})
		if err != nil {
			return nil, err
		}
		if slowCycles != fast.CyclesFound {
			return nil, fmt.Errorf("experiments: pruned %d cycles, naive %d — implementations disagree",
				fast.CyclesFound, slowCycles)
		}
		speedup := float64(slowDur) / float64(fastDur)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", g.NumEdges()),
			fmt.Sprintf("%d", fast.CyclesFound),
			fastDur.Round(time.Microsecond).String(),
			slowDur.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", speedup),
		})
	}
	return t, nil
}

// subgraphPrefix induces the subgraph on nodes [0, n).
func subgraphPrefix(g *graph.Graph, n int) *graph.Graph {
	if n > g.NumNodes() {
		n = g.NumNodes()
	}
	b := graph.NewBuilder(n)
	g.Edges(func(u, v graph.NodeID) bool {
		if int(u) < n && int(v) < n {
			b.AddEdge(u, v)
		}
		return true
	})
	sub, err := b.Build()
	if err != nil {
		// Prefix induction of a valid graph cannot produce invalid
		// edges; reaching here is a programming error.
		panic(err)
	}
	return sub
}

// PPREngines compares the three Personalized PageRank engines
// (experiment A3): exact power iteration, forward push, Monte-Carlo —
// L1 error against exact, top-10 Jaccard, and wall time.
func PPREngines(ctx context.Context, dataset, source string) (*Table, error) {
	g, err := loadDataset(dataset)
	if err != nil {
		return nil, err
	}
	src, ok := g.NodeByLabel(source)
	if !ok {
		return nil, fmt.Errorf("experiments: source %q not in %s", source, dataset)
	}
	seeds := []graph.NodeID{src}

	var exact *ranking.Result
	exactDur, err := timed(func() error {
		var err error
		exact, err = pagerank.Personalized(ctx, g, pagerank.Params{Alpha: 0.85, Seeds: seeds})
		return err
	})
	if err != nil {
		return nil, err
	}

	var push *ranking.Result
	pushDur, err := timed(func() error {
		var err error
		push, err = pagerank.PushPPR(ctx, g, pagerank.PushParams{Alpha: 0.15, Epsilon: 1e-7, Seeds: seeds})
		return err
	})
	if err != nil {
		return nil, err
	}

	var mc *ranking.Result
	mcDur, err := timed(func() error {
		var err error
		mc, err = pagerank.MonteCarloPPR(ctx, g, pagerank.MCParams{Alpha: 0.85, Walks: 20000, Seeds: seeds, Seed: 1})
		return err
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "ablation-ppr-engines",
		Title:   fmt.Sprintf("PPR engines on %s (source %q, α=0.85)", dataset, source),
		Headers: []string{"engine", "L1 error vs exact", "Jaccard@10 vs exact", "time"},
	}
	add := func(name string, res *ranking.Result, dur time.Duration) {
		var l1 float64
		for v := range exact.Scores {
			l1 += math.Abs(exact.Scores[v] - res.Scores[v])
		}
		jac := ranking.JaccardAtK(exact, res, 10)
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.2e", l1),
			fmt.Sprintf("%.3f", jac),
			dur.Round(time.Microsecond).String(),
		})
	}
	add("power-iteration (exact)", exact, exactDur)
	add("forward-push", push, pushDur)
	add("monte-carlo", mc, mcDur)
	return t, nil
}

// ScoringAblation re-runs the Table I Freddie Mercury query under all
// four scoring functions (experiment A4), showing how σ reshapes the
// top of the ranking.
func ScoringAblation(ctx context.Context, reg *algo.Registry) (*Table, error) {
	g, err := loadDataset("enwiki-2018")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-scoring",
		Title:   "CycleRank top-5 under each scoring function (enwiki-2018, Freddie Mercury, K=3)",
		Headers: []string{"#"},
	}
	var columns [][]string
	for _, name := range core.ScoringNames() {
		top, _, err := topN(ctx, reg, algo.NameCycleRank, g,
			algo.Params{Source: "Freddie Mercury", K: 3, Scoring: name}, TopK)
		if err != nil {
			return nil, err
		}
		columns = append(columns, pad(top, TopK))
		t.Headers = append(t.Headers, "σ="+name)
	}
	for i := 0; i < TopK; i++ {
		row := []string{fmt.Sprintf("%d", i+1)}
		for _, col := range columns {
			row = append(row, col[i])
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// ScaleSweep times all seven demo algorithms across the yearly
// snapshots of the English Wikipedia (experiment A5): how cost grows
// with graph size.
func ScaleSweep(ctx context.Context, reg *algo.Registry) (*Table, error) {
	algos := []struct {
		name string
		p    algo.Params
	}{
		{algo.NameCycleRank, algo.Params{Source: "Freddie Mercury", K: 3}},
		{algo.NamePageRank, algo.Params{Alpha: 0.85}},
		{algo.NamePPR, algo.Params{Source: "Freddie Mercury", Alpha: 0.85}},
		{algo.NameCheiRank, algo.Params{Alpha: 0.85}},
		{algo.NamePCheiRank, algo.Params{Source: "Freddie Mercury", Alpha: 0.85}},
		{algo.Name2DRank, algo.Params{Alpha: 0.85}},
		{algo.NameP2DRank, algo.Params{Source: "Freddie Mercury", Alpha: 0.85}},
	}
	t := &Table{
		ID:      "ablation-scale",
		Title:   "Algorithm wall time across enwiki snapshot sizes",
		Headers: []string{"dataset", "nodes", "edges"},
	}
	for _, a := range algos {
		t.Headers = append(t.Headers, a.name)
	}
	for _, year := range []int{2003, 2008, 2013, 2018} {
		name := fmt.Sprintf("enwiki-%d", year)
		g, err := loadDataset(name)
		if err != nil {
			return nil, err
		}
		row := []string{name, fmt.Sprintf("%d", g.NumNodes()), fmt.Sprintf("%d", g.NumEdges())}
		for _, a := range algos {
			dur, err := timed(func() error {
				_, err := algo.Run(ctx, reg, a.name, g, a.p)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: %s on %s: %w", a.name, name, err)
			}
			row = append(row, dur.Round(time.Microsecond).String())
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AlphaSweep measures how Personalized PageRank's hub leak grows with
// the damping factor α (experiment A8). The paper's Table I uses
// α=0.3 — a deliberately short walk; this sweep shows why: the
// probability mass landing on the globally central hubs rises with α,
// pushing them up the personalized ranking.
func AlphaSweep(ctx context.Context, dataset, source string, hubs []string) (*Table, error) {
	g, err := loadDataset(dataset)
	if err != nil {
		return nil, err
	}
	src, ok := g.NodeByLabel(source)
	if !ok {
		return nil, fmt.Errorf("experiments: source %q not in %s", source, dataset)
	}
	hubIDs := make([]graph.NodeID, 0, len(hubs))
	for _, h := range hubs {
		id, ok := g.NodeByLabel(h)
		if !ok {
			return nil, fmt.Errorf("experiments: hub %q not in %s", h, dataset)
		}
		hubIDs = append(hubIDs, id)
	}

	t := &Table{
		ID:      "ablation-alpha-sweep",
		Title:   fmt.Sprintf("PPR hub leak vs α on %s (source %q)", dataset, source),
		Headers: []string{"alpha", "hub mass", "hubs in top-5", "top-5"},
	}
	for _, alpha := range []float64{0.1, 0.3, 0.5, 0.7, 0.85, 0.95} {
		res, err := pagerank.Personalized(ctx, g, pagerank.Params{Alpha: alpha, Seeds: []graph.NodeID{src}})
		if err != nil {
			return nil, err
		}
		var hubMass float64
		for _, id := range hubIDs {
			hubMass += res.Score(id)
		}
		top := res.TopLabels(TopK)
		inTop := 0
		for _, l := range top {
			for _, h := range hubs {
				if l == h {
					inTop++
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", alpha),
			fmt.Sprintf("%.4f", hubMass),
			fmt.Sprintf("%d", inTop),
			strings.Join(top, "; "),
		})
	}
	return t, nil
}

// WeightedAblation contrasts unweighted and weighted Personalized
// PageRank on the Twitter interaction network (experiment A7): when
// repeated interactions carry weight, broadcast influencers (mentioned
// once by many) lose ground to the organizer's actual conversation
// partners.
func WeightedAblation(ctx context.Context) (*Table, error) {
	g, err := loadDataset("twitter-cop27")
	if err != nil {
		return nil, err
	}
	src, ok := g.NodeByLabel("cop27_organizer_00")
	if !ok {
		return nil, fmt.Errorf("experiments: organizer account missing")
	}
	seeds := []graph.NodeID{src}

	plain, err := pagerank.Personalized(ctx, g, pagerank.Params{Alpha: 0.85, Seeds: seeds})
	if err != nil {
		return nil, err
	}

	// Weight reciprocated interactions 5x: a mutual reply thread binds
	// tighter than a one-off mention.
	ws := graph.NewWeights(g)
	var werr error
	g.Edges(func(u, v graph.NodeID) bool {
		if g.HasEdge(v, u) {
			if err := ws.Set(u, v, 5); err != nil {
				werr = err
				return false
			}
		}
		return true
	})
	if werr != nil {
		return nil, werr
	}
	weighted, err := pagerank.WeightedPageRank(ctx, ws, pagerank.Params{Alpha: 0.85, Seeds: seeds})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "ablation-weighted",
		Title:   "Unweighted vs reciprocity-weighted PPR on twitter-cop27 (organizer query)",
		Headers: []string{"#", "unweighted PPR", "weighted PPR (mutual x5)"},
	}
	pt := pad(plain.TopLabels(8), 8)
	wt := pad(weighted.TopLabels(8), 8)
	for i := 0; i < 8; i++ {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", i+1), pt[i], wt[i]})
	}
	return t, nil
}

// Agreement quantifies the demo's side-by-side comparison view
// (experiment A6): pairwise rank agreement between all personalized
// algorithms on the Table I query.
func Agreement(ctx context.Context, reg *algo.Registry) (*Table, error) {
	g, err := loadDataset("enwiki-2018")
	if err != nil {
		return nil, err
	}
	names := []string{algo.NameCycleRank, algo.NamePPR, algo.NamePCheiRank, algo.NameP2DRank}
	results := make(map[string]*ranking.Result, len(names))
	for _, n := range names {
		p := algo.Params{Source: "Freddie Mercury", Alpha: 0.85, K: 3}
		res, err := algo.Run(ctx, reg, n, g, p)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", n, err)
		}
		results[n] = res
	}
	t := &Table{
		ID:      "ablation-agreement",
		Title:   "Pairwise rank agreement on enwiki-2018 (Freddie Mercury), depth 10",
		Headers: []string{"pair", "Jaccard@10", "RBO(p=0.9)", "Kendall τ", "footrule"},
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			ag, err := ranking.CompareAt(results[names[i]], results[names[j]], 10)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				names[i] + " vs " + names[j],
				fmt.Sprintf("%.3f", ag.Jaccard),
				fmt.Sprintf("%.3f", ag.RBO),
				fmt.Sprintf("%.3f", ag.KendallTau),
				fmt.Sprintf("%.3f", ag.Footrule),
			})
		}
	}
	return t, nil
}
