// Package experiments regenerates every table in the paper's
// evaluation section plus the ablation and scalability studies listed
// in DESIGN.md §4. Each experiment returns a structured report the
// crbench binary renders as text, markdown or CSV, and EXPERIMENTS.md
// records against the paper's numbers.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/datasets"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
)

// Table is a generic column-oriented result table (the paper's tables
// are top-5 lists per algorithm configuration).
type Table struct {
	ID      string     `json:"id"`    // e.g. "table-1"
	Title   string     `json:"title"` // caption
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// Text renders the table as aligned plain text.
func (t *Table) Text() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Headers, " | "))
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing
// commas are double-quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		b.WriteString(strings.Join(out, ","))
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// topN runs an algorithm and returns the top-n labels, excluding the
// reference node itself when exclude is non-empty (the paper's tables
// include the reference as row 1 for personalized algorithms; callers
// choose).
func topN(ctx context.Context, reg *algo.Registry, name string, g *graph.Graph, p algo.Params, n int) ([]string, *ranking.Result, error) {
	res, err := algo.Run(ctx, reg, name, g, p)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %s: %w", name, err)
	}
	return res.TopLabels(n), res, nil
}

// pad extends a label list to length n with "-" (the paper renders
// missing rows as dashes, e.g. Table III's nl and pl columns).
func pad(labels []string, n int) []string {
	for len(labels) < n {
		labels = append(labels, "-")
	}
	return labels
}

// loadDataset fetches a catalog dataset once.
func loadDataset(name string) (*graph.Graph, error) {
	cat, err := datasets.BuiltinCatalogSubset(name)
	if err != nil {
		return nil, err
	}
	d, err := cat.Get(name)
	if err != nil {
		return nil, err
	}
	return d.Load()
}

// timed runs fn and returns its duration.
func timed(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}
