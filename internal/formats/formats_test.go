package formats

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := "a,b\nb,c\nc,a\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("N=%d M=%d, want 3/3", g.NumNodes(), g.NumEdges())
	}
	a, _ := g.NodeByLabel("a")
	b, _ := g.NodeByLabel("b")
	if !g.HasEdge(a, b) {
		t.Error("missing edge a->b")
	}
}

func TestReadEdgeListSeparators(t *testing.T) {
	for name, in := range map[string]string{
		"comma":      "x,y\ny,x\n",
		"tab":        "x\ty\ny\tx\n",
		"space":      "x y\ny x\n",
		"mixedspace": "x   y\ny x\n",
	} {
		t.Run(name, func(t *testing.T) {
			g, err := ReadEdgeList(strings.NewReader(in))
			if err != nil {
				t.Fatal(err)
			}
			if g.NumEdges() != 2 {
				t.Errorf("M=%d, want 2", g.NumEdges())
			}
		})
	}
}

func TestReadEdgeListSkipsCommentsAndHeader(t *testing.T) {
	in := "# comment\nSource,Target\n% other comment\n\na,b\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("N=%d M=%d, want 2/1", g.NumNodes(), g.NumEdges())
	}
	if _, ok := g.NodeByLabel("Source"); ok {
		t.Error("header row ingested as an edge")
	}
}

func TestReadEdgeListHeaderOnlyFirstRow(t *testing.T) {
	// "source,target" appearing after real edges is data, not a header.
	in := "a,b\nsource,target\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.NodeByLabel("source"); !ok {
		t.Error("post-data source/target row dropped")
	}
}

func TestReadEdgeListExtraColumnsTolerated(t *testing.T) {
	in := "a,b,3.5\nb,c,1.0\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("M=%d, want 2", g.NumEdges())
	}
}

func TestReadEdgeListBadLine(t *testing.T) {
	_, err := ReadEdgeList(strings.NewReader("a,b\njustone\n"))
	if err == nil {
		t.Fatal("accepted one-field line")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error lacks line number: %v", err)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	in := "alpha,beta\nbeta,gamma\ngamma,alpha\nalpha,gamma\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameLabeledGraph(g, g2) {
		t.Error("edgelist round-trip changed the graph")
	}
}

func TestWriteEdgeListRejectsComma(t *testing.T) {
	b := graph.NewLabeledBuilder()
	b.AddLabeledEdge("has,comma", "x")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteEdgeList(&bytes.Buffer{}, g); err == nil {
		t.Fatal("encoded label containing comma")
	}
}

func TestReadPajekBasic(t *testing.T) {
	in := `*Vertices 3
1 "Freddie Mercury"
2 "Queen (band)"
3 "Brian May"
*Arcs
1 2
2 1
2 3
`
	g, err := ReadPajek(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("N=%d M=%d, want 3/3", g.NumNodes(), g.NumEdges())
	}
	fm, ok := g.NodeByLabel("Freddie Mercury")
	if !ok {
		t.Fatal("quoted label not parsed")
	}
	q, _ := g.NodeByLabel("Queen (band)")
	if !g.HasEdge(fm, q) || !g.HasEdge(q, fm) {
		t.Error("arcs missing")
	}
}

func TestReadPajekEdgesSectionIsUndirected(t *testing.T) {
	in := "*Vertices 2\n*Edges\n1 2\n"
	g, err := ReadPajek(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("M=%d, want 2 (both directions)", g.NumEdges())
	}
}

func TestReadPajekDefaultLabels(t *testing.T) {
	in := "*Vertices 2\n*Arcs\n1 2\n"
	g, err := ReadPajek(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.NodeByLabel("1"); !ok {
		t.Error("default numeric label missing")
	}
}

func TestReadPajekErrors(t *testing.T) {
	cases := map[string]string{
		"no vertices":     "*Arcs\n1 2\n",
		"bad count":       "*Vertices x\n",
		"id out of range": "*Vertices 2\n*Arcs\n1 5\n",
		"vertex range":    "*Vertices 1\n5 \"x\"\n",
		"data no section": "1 2\n*Vertices 2\n",
		"unknown section": "*Vertices 1\n*Wat\n",
		"unsupported":     "*Vertices 1\n*Matrix\n",
		"unterminated":    "*Vertices 1\n1 \"open\n",
		"non int arc":     "*Vertices 2\n*Arcs\na b\n",
		"short arc":       "*Vertices 2\n*Arcs\n1\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadPajek(strings.NewReader(in)); err == nil {
				t.Errorf("accepted malformed input %q", in)
			}
		})
	}
}

func TestPajekRoundTrip(t *testing.T) {
	b := graph.NewLabeledBuilder()
	b.AddLabeledEdge("Pasta", "Italian cuisine")
	b.AddLabeledEdge("Italian cuisine", "Pasta")
	b.AddLabeledEdge("Pasta", "Flour")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePajek(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadPajek(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameLabeledGraph(g, g2) {
		t.Error("pajek round-trip changed the graph")
	}
}

func TestWritePajekRejectsQuote(t *testing.T) {
	b := graph.NewLabeledBuilder()
	b.AddLabeledEdge(`has"quote`, "x")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePajek(&bytes.Buffer{}, g); err == nil {
		t.Fatal("encoded label containing quote")
	}
}

func TestReadASDBasic(t *testing.T) {
	in := "3 3\n0 1\n1 2\n2 0\n"
	g, err := ReadASD(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("N=%d M=%d", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(2, 0) {
		t.Error("missing edge 2->0")
	}
}

func TestReadASDErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"count mismatch": "2 5\n0 1\n",
		"out of range":   "2 1\n0 7\n",
		"negative":       "2 1\n-1 0\n",
		"non integer":    "2 1\na b\n",
		"three fields":   "2 1\n0 1 9\n",
		"neg header":     "-2 1\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadASD(strings.NewReader(in)); err == nil {
				t.Errorf("accepted malformed input %q", in)
			}
		})
	}
}

func TestASDRoundTrip(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{e(0, 1), e(1, 2), e(2, 3), e(3, 0), e(0, 2)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteASD(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadASD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 4 || g2.NumEdges() != 5 {
		t.Fatalf("round trip N=%d M=%d", g2.NumNodes(), g2.NumEdges())
	}
	g.Edges(func(u, v graph.NodeID) bool {
		if !g2.HasEdge(u, v) {
			t.Errorf("round trip lost edge (%d,%d)", u, v)
		}
		return true
	})
}

func TestASDWithLabelsRoundTrip(t *testing.T) {
	b := graph.NewLabeledBuilder()
	b.AddLabeledEdge("1984", "Animal Farm")
	b.AddLabeledEdge("Animal Farm", "1984")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var gbuf, lbuf bytes.Buffer
	if err := WriteASDWithLabels(&gbuf, &lbuf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadASDWithLabels(&gbuf, &lbuf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameLabeledGraph(g, g2) {
		t.Error("asd+labels round-trip changed the graph")
	}
}

func TestDetect(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want Format
	}{
		{"pajek", "*Vertices 2\n*Arcs\n1 2\n", FormatPajek},
		{"pajek lower", "*vertices 2\n", FormatPajek},
		{"asd", "2 1\n0 1\n", FormatASD},
		{"edgelist labels", "a,b\nb,a\n", FormatEdgeList},
		{"edgelist numeric non-asd", "5 6\n6 7\n7 5\n", FormatEdgeList},
		{"edgelist with comments", "# hi\nx y\n", FormatEdgeList},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := Detect([]byte(c.in))
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Errorf("Detect = %q, want %q", got, c.want)
			}
		})
	}
	if _, err := Detect([]byte("")); err == nil {
		t.Error("Detect accepted empty input")
	}
	if _, err := Detect([]byte("a b c d\n")); err == nil {
		t.Error("Detect accepted 4-field line")
	}
}

func TestFromExtension(t *testing.T) {
	cases := map[string]Format{
		".csv": FormatEdgeList, "csv": FormatEdgeList, ".txt": FormatEdgeList,
		".net": FormatPajek, ".NET": FormatPajek,
		".asd": FormatASD,
		".xyz": Format(""),
	}
	for ext, want := range cases {
		if got := FromExtension(ext); got != want {
			t.Errorf("FromExtension(%q) = %q, want %q", ext, got, want)
		}
	}
}

func TestReadWriteDispatch(t *testing.T) {
	g, _ := graph.FromEdges(2, []graph.Edge{e(0, 1)})
	for _, f := range Formats() {
		var buf bytes.Buffer
		if err := Write(&buf, g, f); err != nil {
			t.Fatalf("Write %s: %v", f, err)
		}
		if _, err := Read(&buf, f); err != nil {
			t.Fatalf("Read %s: %v", f, err)
		}
	}
	if err := Write(&bytes.Buffer{}, g, Format("nope")); err == nil {
		t.Error("Write accepted unknown format")
	}
	if _, err := Read(strings.NewReader(""), Format("nope")); err == nil {
		t.Error("Read accepted unknown format")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g, _ := graph.FromEdges(3, []graph.Edge{e(0, 1), e(1, 2), e(2, 0)})
	for _, ext := range []string{".csv", ".net", ".asd"} {
		path := filepath.Join(dir, "g"+ext)
		if err := WriteFile(path, g); err != nil {
			t.Fatalf("WriteFile %s: %v", ext, err)
		}
		g2, err := ReadFile(path)
		if err != nil {
			t.Fatalf("ReadFile %s: %v", ext, err)
		}
		if g2.NumEdges() != 3 {
			t.Errorf("%s: M=%d, want 3", ext, g2.NumEdges())
		}
	}
	if err := WriteFile(filepath.Join(dir, "g.bogus"), g); err == nil {
		t.Error("WriteFile accepted unknown extension")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("ReadFile on missing file succeeded")
	}
}

func TestReadFileSniffsUnknownExtension(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.dat")
	if err := os.WriteFile(path, []byte("*Vertices 2\n*Arcs\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 {
		t.Errorf("sniffed graph N=%d, want 2", g.NumNodes())
	}
}

// Property: for random graphs, ASD and Pajek round-trips preserve the
// edge set exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		b := graph.NewBuilder(n)
		for i := 0; i < n*2; i++ {
			b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteASD(&buf, g); err != nil {
			return false
		}
		g2, err := ReadASD(&buf)
		if err != nil {
			return false
		}
		if g2.NumEdges() != g.NumEdges() || g2.NumNodes() != g.NumNodes() {
			return false
		}
		same := true
		g.Edges(func(u, v graph.NodeID) bool {
			if !g2.HasEdge(u, v) {
				same = false
				return false
			}
			return true
		})
		return same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// e builds a keyed Edge literal (vet forbids unkeyed cross-package
// composite literals).
func e(u, v graph.NodeID) graph.Edge { return graph.Edge{From: u, To: v} }

// sameLabeledGraph reports whether two labeled graphs have identical
// label-level edge sets.
func sameLabeledGraph(a, b *graph.Graph) bool {
	if a.NumEdges() != b.NumEdges() {
		return false
	}
	same := true
	a.Edges(func(u, v graph.NodeID) bool {
		bu, ok1 := b.NodeByLabel(a.Label(u))
		bv, ok2 := b.NodeByLabel(a.Label(v))
		if !ok1 || !ok2 || !b.HasEdge(bu, bv) {
			same = false
			return false
		}
		return true
	})
	return same
}
