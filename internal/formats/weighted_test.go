package formats

import (
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadEdgeListWeighted(t *testing.T) {
	in := "a,b,2.5\nb,a\na,b,1.5\nb,c,4\n"
	g, ws, err := ReadEdgeListWeighted(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("M=%d, want 3 (a->b deduped)", g.NumEdges())
	}
	a, _ := g.NodeByLabel("a")
	b, _ := g.NodeByLabel("b")
	c, _ := g.NodeByLabel("c")
	// Duplicate a->b rows accumulate: 2.5 + 1.5.
	w, err := ws.Get(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if w != 4 {
		t.Errorf("w(a,b) = %v, want 4", w)
	}
	// Missing weight defaults to 1.
	w, _ = ws.Get(b, a)
	if w != 1 {
		t.Errorf("w(b,a) = %v, want 1", w)
	}
	w, _ = ws.Get(b, c)
	if w != 4 {
		t.Errorf("w(b,c) = %v, want 4", w)
	}
}

func TestReadEdgeListWeightedHeaderAndErrors(t *testing.T) {
	in := "Source,Target,Weight\nx,y,3\n"
	g, ws, err := ReadEdgeListWeighted(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("M=%d", g.NumEdges())
	}
	x, _ := g.NodeByLabel("x")
	y, _ := g.NodeByLabel("y")
	if w, _ := ws.Get(x, y); w != 3 {
		t.Errorf("w = %v", w)
	}
	for _, bad := range []string{
		"a,b,zero\n",
		"a,b,-2\n",
		"a,b,0\n",
		"loner\n",
	} {
		if _, _, err := ReadEdgeListWeighted(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestReadFileGzip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csv.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if _, err := zw.Write([]byte("a,b\nb,a\n")); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 2 {
		t.Errorf("gzip graph N=%d M=%d", g.NumNodes(), g.NumEdges())
	}
}

func TestReadFileGzipSniffed(t *testing.T) {
	// .gz with no inner extension: content sniffing applies after
	// decompression.
	dir := t.TempDir()
	path := filepath.Join(dir, "data.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	zw.Write([]byte("*Vertices 2\n*Arcs\n1 2\n"))
	zw.Close()
	f.Close()

	g, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 {
		t.Errorf("sniffed gzip N=%d", g.NumNodes())
	}
}

func TestReadFileCorruptGzip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.csv.gz")
	if err := os.WriteFile(path, []byte("not gzip at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("corrupt gzip accepted")
	}
}
