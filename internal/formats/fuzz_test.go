package formats

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets double as robustness unit tests: `go test` runs the
// seed corpus; `go test -fuzz=FuzzX` explores further. The invariant
// under test is "never panic, and anything successfully parsed
// round-trips through its writer".

func FuzzReadEdgeList(f *testing.F) {
	for _, seed := range []string{
		"a,b\n", "a,b\nb,a\n", "source,target\nx,y\n",
		"# comment\n\n a , b \n", "a\tb\n", "a b c d\n", ",,,\n", "ü,é\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			return // labels may contain commas; the writer must refuse, not panic
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-read of own output failed: %v\noutput: %q", err, buf.String())
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed edge count %d -> %d", g.NumEdges(), g2.NumEdges())
		}
	})
}

func FuzzReadPajek(f *testing.F) {
	for _, seed := range []string{
		"*Vertices 2\n1 \"a\"\n2 \"b\"\n*Arcs\n1 2\n",
		"*Vertices 1\n*Edges\n1 1\n",
		"*Vertices 0\n", "*vertices 3\n*arcs\n1 3\n3 1\n",
		"*Vertices x\n", "1 2\n", "*Vertices 2\n1 \"unterminated\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadPajek(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WritePajek(&buf, g); err != nil {
			return // quote-containing labels are refused by the writer
		}
		g2, err := ReadPajek(&buf)
		if err != nil {
			t.Fatalf("re-read of own output failed: %v\noutput: %q", err, buf.String())
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape %d/%d -> %d/%d",
				g.NumNodes(), g.NumEdges(), g2.NumNodes(), g2.NumEdges())
		}
	})
}

func FuzzReadASD(f *testing.F) {
	for _, seed := range []string{
		"2 1\n0 1\n", "0 0\n", "3 3\n0 1\n1 2\n2 0\n",
		"2 5\n0 1\n", "-1 2\n", "a b\n", "2 1\n0 1\n# trailing\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadASD(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteASD(&buf, g); err != nil {
			t.Fatalf("writing parsed graph failed: %v", err)
		}
		g2, err := ReadASD(&buf)
		if err != nil {
			t.Fatalf("re-read of own output failed: %v\noutput: %q", err, buf.String())
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape")
		}
	})
}

func FuzzDetect(f *testing.F) {
	f.Add("*Vertices 2\n")
	f.Add("2 1\n0 1\n")
	f.Add("a,b\n")
	f.Add("")
	f.Add("\x00\x01\x02")
	f.Fuzz(func(t *testing.T, in string) {
		// Detect must never panic and, when it claims a format, the
		// corresponding reader must not panic either (errors are fine).
		format, err := Detect([]byte(in))
		if err != nil {
			return
		}
		_, _ = Read(strings.NewReader(in), format)
	})
}
