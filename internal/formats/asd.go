package formats

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// ReadASD parses the CycleRank project's ASD format: a header line
// "N M" (node count, edge count) followed by exactly M lines "src dst"
// of zero-based node ids. Comments ('#' or '%') and blank lines are
// permitted anywhere. The edge count must match exactly — ASD is the
// platform's internal interchange format and is validated strictly.
func ReadASD(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)

	var (
		b      *graph.Builder
		n, m   int64
		edges  int64
		lineNo int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := splitFields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("formats: asd line %d: want 2 fields, got %d (%q)", lineNo, len(fields), line)
		}
		a, err1 := strconv.ParseInt(fields[0], 10, 64)
		c, err2 := strconv.ParseInt(fields[1], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("formats: asd line %d: non-integer field in %q", lineNo, line)
		}
		if b == nil {
			if a < 0 || c < 0 {
				return nil, fmt.Errorf("formats: asd line %d: negative header values", lineNo)
			}
			if a > graph.MaxNodeID {
				return nil, fmt.Errorf("formats: asd line %d: node count %d exceeds limit", lineNo, a)
			}
			n, m = a, c
			b = graph.NewBuilder(int(n))
			continue
		}
		if a < 0 || a >= n || c < 0 || c >= n {
			return nil, fmt.Errorf("formats: asd line %d: edge (%d,%d) out of range [0,%d)", lineNo, a, c, n)
		}
		b.AddEdge(graph.NodeID(a), graph.NodeID(c))
		edges++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("formats: asd: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("formats: asd: missing header line")
	}
	if edges != m {
		return nil, fmt.Errorf("formats: asd: header declares %d edges, found %d", m, edges)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("formats: asd: %w", err)
	}
	return g, nil
}

// WriteASD encodes g in the ASD format. Labels are not representable
// in ASD; they are dropped (use WriteASDWithLabels to emit a sidecar).
func WriteASD(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.NumNodes(), g.NumEdges()); err != nil {
		return fmt.Errorf("formats: asd: %w", err)
	}
	var writeErr error
	g.Edges(func(u, v graph.NodeID) bool {
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			writeErr = fmt.Errorf("formats: asd: %w", err)
			return false
		}
		return true
	})
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}

// WriteASDWithLabels encodes g in ASD to w and, when the graph is
// labeled, its label table to labelsW (one label per line, node order).
func WriteASDWithLabels(w, labelsW io.Writer, g *graph.Graph) error {
	if err := WriteASD(w, g); err != nil {
		return err
	}
	if g.Labels() == nil {
		return nil
	}
	bw := bufio.NewWriter(labelsW)
	for _, name := range g.Labels().Names() {
		if strings.ContainsRune(name, '\n') {
			return fmt.Errorf("formats: asd labels: label with newline cannot be encoded: %q", name)
		}
		if _, err := fmt.Fprintln(bw, name); err != nil {
			return fmt.Errorf("formats: asd labels: %w", err)
		}
	}
	return bw.Flush()
}

// ReadASDWithLabels parses an ASD graph plus a label sidecar produced
// by WriteASDWithLabels.
func ReadASDWithLabels(r, labelsR io.Reader) (*graph.Graph, error) {
	g, err := ReadASD(r)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(labelsR)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	var labels []string
	for sc.Scan() {
		labels = append(labels, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("formats: asd labels: %w", err)
	}
	lg, err := g.WithLabels(labels)
	if err != nil {
		return nil, fmt.Errorf("formats: asd labels: %w", err)
	}
	return lg, nil
}
