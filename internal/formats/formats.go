// Package formats reads and writes the three graph file formats the
// demo platform supports for dataset upload:
//
//   - edgelist: comma/whitespace-separated "source,target" pairs, one
//     edge per line (the Gephi CSV edge-list convention);
//   - pajek: the Pajek .NET format, "*Vertices n" followed by vertex
//     declarations and an "*Arcs" (directed) section;
//   - asd: the CycleRank project's own compact format — a header line
//     "N M" followed by M lines "src dst" of zero-based integer ids.
//
// Each format has a Reader returning *graph.Graph and a Writer; Detect
// sniffs the format from content. All readers report errors with
// 1-based line numbers.
//
// Invariants:
//
//   - Readers produce canonical graphs: construction goes through
//     graph.Builder, so duplicate edges and out-of-order input
//     collapse to the same Graph regardless of source format.
//   - Write∘Read is lossless for structure and labels (round-trip
//     tested per format); bare asd preserves structure only, labels
//     travel in the sidecar of Read/WriteASDWithLabels.
//   - Malformed input fails with an error naming the 1-based line,
//     never a panic (fuzz tested across all three formats).
//   - Gzip is transparent at the file layer: ReadFile decompresses
//     "*.gz" and dispatches on the inner extension.
package formats

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// Format identifies a supported graph file format.
type Format string

// Supported formats.
const (
	FormatEdgeList Format = "edgelist"
	FormatPajek    Format = "pajek"
	FormatASD      Format = "asd"
)

// ErrUnknownFormat is returned when sniffing or parsing cannot
// determine a file's format.
var ErrUnknownFormat = errors.New("formats: unknown graph format")

// Formats returns all supported formats in stable order.
func Formats() []Format {
	return []Format{FormatEdgeList, FormatPajek, FormatASD}
}

// Valid reports whether f names a supported format.
func (f Format) Valid() bool {
	switch f {
	case FormatEdgeList, FormatPajek, FormatASD:
		return true
	}
	return false
}

// Extension returns the conventional file extension for f, including
// the dot.
func (f Format) Extension() string {
	switch f {
	case FormatEdgeList:
		return ".csv"
	case FormatPajek:
		return ".net"
	case FormatASD:
		return ".asd"
	}
	return ""
}

// Read parses a graph in the given format.
func Read(r io.Reader, f Format) (*graph.Graph, error) {
	switch f {
	case FormatEdgeList:
		return ReadEdgeList(r)
	case FormatPajek:
		return ReadPajek(r)
	case FormatASD:
		return ReadASD(r)
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownFormat, f)
}

// Write encodes a graph in the given format.
func Write(w io.Writer, g *graph.Graph, f Format) error {
	switch f {
	case FormatEdgeList:
		return WriteEdgeList(w, g)
	case FormatPajek:
		return WritePajek(w, g)
	case FormatASD:
		return WriteASD(w, g)
	}
	return fmt.Errorf("%w: %q", ErrUnknownFormat, f)
}

// ReadFile loads a graph from disk, inferring the format from the file
// extension and falling back to content sniffing. Files ending in .gz
// are transparently decompressed (e.g. "edges.csv.gz").
func ReadFile(path string) (*graph.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("formats: %w", err)
	}
	ext := filepath.Ext(path)
	if strings.EqualFold(ext, ".gz") {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("formats: %s: %w", path, err)
		}
		data, err = io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("formats: %s: %w", path, err)
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("formats: %s: %w", path, err)
		}
		ext = filepath.Ext(strings.TrimSuffix(path, filepath.Ext(path)))
	}
	f := FromExtension(ext)
	if !f.Valid() {
		f, err = Detect(data)
		if err != nil {
			return nil, fmt.Errorf("formats: %s: %w", path, err)
		}
	}
	g, err := Read(bytes.NewReader(data), f)
	if err != nil {
		return nil, fmt.Errorf("formats: %s: %w", path, err)
	}
	return g, nil
}

// WriteFile stores a graph to disk in the format implied by the file
// extension.
func WriteFile(path string, g *graph.Graph) error {
	f := FromExtension(filepath.Ext(path))
	if !f.Valid() {
		return fmt.Errorf("%w: extension %q", ErrUnknownFormat, filepath.Ext(path))
	}
	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("formats: %w", err)
	}
	if err := Write(bufio.NewWriter(file), g, f); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// FromExtension maps a file extension (with or without the leading
// dot) to a Format; the zero Format is returned for unknown
// extensions.
func FromExtension(ext string) Format {
	switch strings.ToLower(strings.TrimPrefix(ext, ".")) {
	case "csv", "edgelist", "edges", "txt":
		return FormatEdgeList
	case "net", "pajek":
		return FormatPajek
	case "asd":
		return FormatASD
	}
	return Format("")
}

// Detect sniffs the format of graph file content. Pajek files start
// with a "*Vertices" directive; ASD files start with a bare "N M"
// integer pair followed by integer edges; anything else that parses as
// delimiter-separated pairs is an edge list.
func Detect(data []byte) (Format, error) {
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var first string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		first = line
		break
	}
	if first == "" {
		return "", fmt.Errorf("%w: empty input", ErrUnknownFormat)
	}
	if strings.HasPrefix(strings.ToLower(first), "*vertices") {
		return FormatPajek, nil
	}
	fields := splitFields(first)
	if len(fields) == 2 && isUint(fields[0]) && isUint(fields[1]) {
		// Both "N M" headers and "src dst" edge lines look like two
		// integers. Disambiguate: an ASD header is followed by edges
		// whose ids are < N; treat a two-integer first line as ASD only
		// when the declared M matches the number of remaining lines.
		if looksLikeASD(data) {
			return FormatASD, nil
		}
		return FormatEdgeList, nil
	}
	if len(fields) == 2 {
		return FormatEdgeList, nil
	}
	return "", fmt.Errorf("%w: unrecognized first line %q", ErrUnknownFormat, first)
}

func looksLikeASD(data []byte) bool {
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	header := false
	var n, m uint64
	var edges uint64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := splitFields(line)
		if len(fields) != 2 || !isUint(fields[0]) || !isUint(fields[1]) {
			return false
		}
		a, b := parseUint(fields[0]), parseUint(fields[1])
		if !header {
			header = true
			n, m = a, b
			continue
		}
		if a >= n || b >= n {
			return false
		}
		edges++
	}
	return header && edges == m
}

func splitFields(line string) []string {
	if strings.ContainsRune(line, ',') {
		parts := strings.Split(line, ",")
		out := parts[:0]
		for _, p := range parts {
			p = strings.TrimSpace(p)
			if p != "" {
				out = append(out, p)
			}
		}
		return out
	}
	if strings.ContainsRune(line, '\t') {
		parts := strings.Split(line, "\t")
		out := parts[:0]
		for _, p := range parts {
			p = strings.TrimSpace(p)
			if p != "" {
				out = append(out, p)
			}
		}
		return out
	}
	return strings.Fields(line)
}

func isUint(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

func parseUint(s string) uint64 {
	var v uint64
	for _, r := range s {
		v = v*10 + uint64(r-'0')
	}
	return v
}
