package formats

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// ReadEdgeList parses the CSV edge-list format: one edge per line as
// "source,target" (comma, tab or whitespace separated). Node names may
// be arbitrary strings; purely numeric files produce graphs whose
// labels are the original numeric tokens. Lines that are empty or
// start with '#' or '%' are skipped. A leading "source,target" /
// "Source,Target" header row (the Gephi convention) is skipped too.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	b := graph.NewLabeledBuilder()
	lineNo := 0
	seenEdge := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := splitFields(line)
		// Gephi-style header row; extra columns (Weight, Type, ...) are
		// part of the convention, so any column count qualifies.
		if !seenEdge && len(fields) >= 2 && isHeaderToken(fields[0]) && isHeaderToken(fields[1]) {
			continue
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("formats: edgelist line %d: want 2 fields, got %d (%q)", lineNo, len(fields), line)
		}
		// Extra columns (weights, edge types) are tolerated and ignored,
		// matching the demo's permissive upload path.
		b.AddLabeledEdge(fields[0], fields[1])
		seenEdge = true
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("formats: edgelist: %w", err)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("formats: edgelist: %w", err)
	}
	return g, nil
}

// ReadEdgeListWeighted parses an edge list whose optional third column
// is a positive edge weight (the Gephi "source,target,weight"
// convention). Rows without a weight default to 1; duplicate edges
// accumulate their weights — a repeated interaction is a stronger tie.
func ReadEdgeListWeighted(r io.Reader) (*graph.Graph, *graph.Weights, error) {
	type wEdge struct {
		from, to string
		w        float64
	}
	var rows []wEdge
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	b := graph.NewLabeledBuilder()
	lineNo := 0
	seenEdge := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := splitFields(line)
		if !seenEdge && len(fields) >= 2 && isHeaderToken(fields[0]) && isHeaderToken(fields[1]) {
			continue
		}
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("formats: edgelist line %d: want at least 2 fields, got %d (%q)", lineNo, len(fields), line)
		}
		w := 1.0
		if len(fields) >= 3 {
			var err error
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil || w <= 0 {
				return nil, nil, fmt.Errorf("formats: edgelist line %d: bad weight %q", lineNo, fields[2])
			}
		}
		b.AddLabeledEdge(fields[0], fields[1])
		rows = append(rows, wEdge{from: fields[0], to: fields[1], w: w})
		seenEdge = true
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("formats: edgelist: %w", err)
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("formats: edgelist: %w", err)
	}
	ws := graph.NewWeights(g)
	// The builder collapses duplicate edges; replay rows to accumulate
	// weights (first occurrence replaces the default 1, later ones add).
	seen := make(map[[2]graph.NodeID]bool, len(rows))
	for _, row := range rows {
		u, _ := g.NodeByLabel(row.from)
		v, _ := g.NodeByLabel(row.to)
		key := [2]graph.NodeID{u, v}
		if seen[key] {
			if err := ws.Add(u, v, row.w); err != nil {
				return nil, nil, fmt.Errorf("formats: edgelist: %w", err)
			}
			continue
		}
		seen[key] = true
		if err := ws.Set(u, v, row.w); err != nil {
			return nil, nil, fmt.Errorf("formats: edgelist: %w", err)
		}
	}
	return g, ws, nil
}

func isHeaderToken(s string) bool {
	switch strings.ToLower(s) {
	case "source", "target", "src", "dst", "from", "to":
		return true
	}
	return false
}

// WriteEdgeList encodes g as a CSV edge list, one "source,target" line
// per edge in canonical order. Labels containing commas are rejected
// since the format cannot represent them.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	var encodeErr error
	g.Edges(func(u, v graph.NodeID) bool {
		lu, lv := g.Label(u), g.Label(v)
		if strings.ContainsRune(lu, ',') || strings.ContainsRune(lv, ',') {
			encodeErr = fmt.Errorf("formats: edgelist: label with comma cannot be encoded: %q -> %q", lu, lv)
			return false
		}
		if _, err := fmt.Fprintf(bw, "%s,%s\n", lu, lv); err != nil {
			encodeErr = fmt.Errorf("formats: edgelist: %w", err)
			return false
		}
		return true
	})
	if encodeErr != nil {
		return encodeErr
	}
	return bw.Flush()
}
