package formats

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// ReadPajek parses the Pajek .NET format:
//
//	*Vertices N
//	1 "Label one"
//	2 "Label two"
//	...
//	*Arcs
//	1 2
//	2 1
//
// Vertex ids are 1-based. Vertex declaration lines are optional; when
// absent, labels default to the decimal id. An *Edges section (if
// present) is treated as undirected and expands each line into both
// directions, per Pajek semantics. Coordinates and attributes after
// the label are ignored.
func ReadPajek(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)

	var (
		n       = -1
		labels  []string
		section = ""
		lineNo  = 0
		edges   []graph.Edge
	)

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if strings.HasPrefix(line, "*") {
			directive := strings.ToLower(strings.Fields(line)[0])
			switch directive {
			case "*vertices":
				fields := strings.Fields(line)
				if len(fields) < 2 {
					return nil, fmt.Errorf("formats: pajek line %d: *Vertices without count", lineNo)
				}
				v, err := strconv.Atoi(fields[1])
				if err != nil || v < 0 {
					return nil, fmt.Errorf("formats: pajek line %d: bad vertex count %q", lineNo, fields[1])
				}
				n = v
				labels = make([]string, n)
				for i := range labels {
					labels[i] = strconv.Itoa(i + 1)
				}
				section = "vertices"
			case "*arcs":
				section = "arcs"
			case "*edges":
				section = "edges"
			case "*arcslist", "*edgeslist", "*matrix":
				return nil, fmt.Errorf("formats: pajek line %d: unsupported section %s", lineNo, directive)
			default:
				return nil, fmt.Errorf("formats: pajek line %d: unknown directive %q", lineNo, directive)
			}
			continue
		}
		switch section {
		case "vertices":
			id, label, err := parsePajekVertex(line)
			if err != nil {
				return nil, fmt.Errorf("formats: pajek line %d: %w", lineNo, err)
			}
			if id < 1 || id > n {
				return nil, fmt.Errorf("formats: pajek line %d: vertex id %d out of range [1,%d]", lineNo, id, n)
			}
			labels[id-1] = label
		case "arcs", "edges":
			fields := strings.Fields(line)
			if len(fields) < 2 {
				return nil, fmt.Errorf("formats: pajek line %d: want at least 2 fields, got %q", lineNo, line)
			}
			u, err1 := strconv.Atoi(fields[0])
			v, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("formats: pajek line %d: non-integer endpoint in %q", lineNo, line)
			}
			if n < 0 {
				return nil, fmt.Errorf("formats: pajek line %d: %s before *Vertices", lineNo, section)
			}
			if u < 1 || u > n || v < 1 || v > n {
				return nil, fmt.Errorf("formats: pajek line %d: endpoint out of range [1,%d] in %q", lineNo, n, line)
			}
			edges = append(edges, graph.Edge{From: graph.NodeID(u - 1), To: graph.NodeID(v - 1)})
			if section == "edges" && u != v {
				edges = append(edges, graph.Edge{From: graph.NodeID(v - 1), To: graph.NodeID(u - 1)})
			}
		default:
			return nil, fmt.Errorf("formats: pajek line %d: data before any section: %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("formats: pajek: %w", err)
	}
	if n < 0 {
		return nil, fmt.Errorf("formats: pajek: missing *Vertices section")
	}

	g, err := graph.FromEdges(n, edges)
	if err != nil {
		return nil, fmt.Errorf("formats: pajek: %w", err)
	}
	// Deduplicate default labels against explicit ones if a vertex line
	// renamed a node to another node's default numeric label.
	lg, err := g.WithLabels(labels)
	if err != nil {
		return nil, fmt.Errorf("formats: pajek: %w", err)
	}
	return lg, nil
}

func parsePajekVertex(line string) (id int, label string, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return 0, "", fmt.Errorf("empty vertex line")
	}
	id, err = strconv.Atoi(fields[0])
	if err != nil {
		return 0, "", fmt.Errorf("bad vertex id %q", fields[0])
	}
	rest := strings.TrimSpace(line[len(fields[0]):])
	if rest == "" {
		return id, strconv.Itoa(id), nil
	}
	if strings.HasPrefix(rest, `"`) {
		end := strings.Index(rest[1:], `"`)
		if end < 0 {
			return 0, "", fmt.Errorf("unterminated quoted label in %q", line)
		}
		return id, rest[1 : 1+end], nil
	}
	return id, strings.Fields(rest)[0], nil
}

// WritePajek encodes g in the Pajek .NET format with quoted labels and
// a directed *Arcs section.
func WritePajek(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	n := g.NumNodes()
	if _, err := fmt.Fprintf(bw, "*Vertices %d\n", n); err != nil {
		return fmt.Errorf("formats: pajek: %w", err)
	}
	for v := 0; v < n; v++ {
		label := g.Label(graph.NodeID(v))
		if strings.ContainsRune(label, '"') {
			return fmt.Errorf("formats: pajek: label with quote cannot be encoded: %q", label)
		}
		if _, err := fmt.Fprintf(bw, "%d \"%s\"\n", v+1, label); err != nil {
			return fmt.Errorf("formats: pajek: %w", err)
		}
	}
	if _, err := fmt.Fprintln(bw, "*Arcs"); err != nil {
		return fmt.Errorf("formats: pajek: %w", err)
	}
	var writeErr error
	g.Edges(func(u, v graph.NodeID) bool {
		if _, err := fmt.Fprintf(bw, "%d %d\n", u+1, v+1); err != nil {
			writeErr = fmt.Errorf("formats: pajek: %w", err)
			return false
		}
		return true
	})
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}
