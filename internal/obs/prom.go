package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family of the given registries in the
// Prometheus text exposition format (version 0.0.4). Families with
// the same name appearing in several registries are merged under one
// HELP/TYPE header — the pattern behind a scrape endpoint that
// combines the process-wide Default() registry with per-component
// ones; a kind mismatch across registries is an error.
func WritePrometheus(w io.Writer, regs ...*Registry) error {
	type mergedFamily struct {
		help   string
		k      Kind
		series []*series
	}
	merged := make(map[string]*mergedFamily)
	var names []string
	for _, r := range regs {
		if r == nil {
			continue
		}
		r.mu.Lock()
		for name, f := range r.families {
			mf, ok := merged[name]
			if !ok {
				mf = &mergedFamily{help: f.help, k: f.k}
				merged[name] = mf
				names = append(names, name)
			} else if mf.k != f.k {
				r.mu.Unlock()
				return fmt.Errorf("obs: family %q is %s in one registry, %s in another", name, mf.k, f.k)
			}
			mf.series = append(mf.series, f.series...)
		}
		r.mu.Unlock()
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		f := merged[name]
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, f.k)
		for _, s := range f.series {
			writeSeries(bw, name, s)
		}
	}
	return bw.Flush()
}

// escapeHelp applies the exposition escapes for HELP text.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// writeSeries renders one series' sample lines.
func writeSeries(w *bufio.Writer, name string, s *series) {
	switch m := s.m.(type) {
	case *Counter:
		writeSample(w, name, s.labels, float64(m.Value()))
	case *Gauge:
		writeSample(w, name, s.labels, m.Value())
	case funcMetric:
		writeSample(w, name, s.labels, m.fn())
	case *Histogram:
		snap := m.Snapshot()
		var cum int64
		for i, bound := range snap.Bounds {
			cum += snap.Counts[i]
			writeSample(w, name+"_bucket", joinLabels(s.labels, fmt.Sprintf("le=%q", formatFloat(bound))), float64(cum))
		}
		cum += snap.Counts[len(snap.Counts)-1]
		writeSample(w, name+"_bucket", joinLabels(s.labels, `le="+Inf"`), float64(cum))
		writeSample(w, name+"_sum", s.labels, snap.Sum)
		writeSample(w, name+"_count", s.labels, float64(cum))
	}
}

// joinLabels appends one rendered pair to a (possibly empty) rendered
// label set.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

func writeSample(w *bufio.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatFloat(v))
}

// formatFloat renders a sample value: integers without an exponent,
// everything else in Go's shortest round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// CheckExposition validates a Prometheus text exposition and returns
// the sorted family names it declares. It enforces the subset of the
// format the platform emits — and that monitoring systems require:
//
//   - every non-comment line parses as `name[{labels}] value`;
//   - metric and label names match the Prometheus grammar, label
//     values are correctly quoted, values parse as floats;
//   - samples are preceded by a TYPE declaration for their family
//     (histogram samples may use the _bucket/_sum/_count suffixes);
//   - no duplicate series (same name and label set twice);
//   - TYPE values are counter, gauge, histogram, summary or untyped.
//
// It is the shared validator behind the /metrics golden test and the
// metricscheck CI gate.
func CheckExposition(data []byte) ([]string, error) {
	types := make(map[string]Kind)
	seen := make(map[string]bool)
	var names []string
	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			name, kind, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if kind != "" {
				if _, dup := types[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				types[name] = kind
				names = append(names, name)
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return nil, fmt.Errorf("line %d: sample value %q is not a float", lineNo, value)
		}
		fam, ok := sampleFamily(name, types)
		if !ok {
			return nil, fmt.Errorf("line %d: sample %q has no preceding TYPE declaration", lineNo, name)
		}
		_ = fam
		key := name + "{" + labels + "}"
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
	}
	sort.Strings(names)
	return names, nil
}

// parseComment validates a # line; TYPE lines return the declared
// family name and kind, HELP and free comments return empty.
func parseComment(line string) (name string, kind Kind, err error) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return "", "", nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validName.MatchString(fields[2]) {
			return "", "", fmt.Errorf("malformed HELP line %q", line)
		}
		return fields[2], "", nil
	case "TYPE":
		if len(fields) < 4 || !validName.MatchString(fields[2]) {
			return "", "", fmt.Errorf("malformed TYPE line %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
			return fields[2], Kind(fields[3]), nil
		}
		return "", "", fmt.Errorf("unknown metric type %q", fields[3])
	}
	return "", "", nil // free-form comment
}

// sampleFamily resolves a sample name to its declared family,
// accepting the histogram/summary suffix conventions.
func sampleFamily(name string, types map[string]Kind) (string, bool) {
	if _, ok := types[name]; ok {
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if k, ok := types[base]; ok && (k == KindHistogram || k == "summary") {
			return base, true
		}
	}
	return "", false
}

// parseSample splits `name[{labels}] value` and validates the name
// and label syntax. The returned labels string is the raw inner text.
func parseSample(line string) (name, labels, value string, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return "", "", "", fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[brace+1 : end]
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", "", "", fmt.Errorf("no value in %q", line)
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp+1:])
	}
	if !validName.MatchString(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	if err := checkLabels(labels); err != nil {
		return "", "", "", fmt.Errorf("%w in %q", err, line)
	}
	// A timestamp after the value is permitted by the format; the
	// platform never emits one, but tolerate it.
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		rest = rest[:sp]
	}
	if rest == "" {
		return "", "", "", fmt.Errorf("no value in %q", line)
	}
	return name, labels, rest, nil
}

// checkLabels validates the inner text of a label set.
func checkLabels(labels string) error {
	rest := labels
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed label pair")
		}
		lname := rest[:eq]
		if !validName.MatchString(lname) {
			return fmt.Errorf("invalid label name %q", lname)
		}
		rest = rest[eq+1:]
		if len(rest) < 2 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value")
		}
		// Scan the quoted value honoring backslash escapes.
		i := 1
		for {
			if i >= len(rest) {
				return fmt.Errorf("unterminated label value")
			}
			if rest[i] == '\\' {
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		rest = rest[i+1:]
		if rest != "" {
			if rest[0] != ',' {
				return fmt.Errorf("missing comma between labels")
			}
			rest = rest[1:]
		}
	}
	return nil
}
