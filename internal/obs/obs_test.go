package obs

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := NewGauge()
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// le semantics: a value equal to a bound lands in that bound's
	// bucket, not the next one.
	cases := []struct {
		v      float64
		bucket int
	}{
		{0.5, 0}, {1, 0}, {1.0000001, 1}, {2, 1}, {3, 2}, {4, 2}, {4.1, 3}, {1e9, 3},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	snap := h.Snapshot()
	want := make([]int64, 4)
	for _, c := range cases {
		want[c.bucket]++
	}
	for i := range want {
		if snap.Counts[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, snap.Counts[i], want[i], snap.Counts)
		}
	}
	if snap.Count != int64(len(cases)) {
		t.Errorf("count = %d, want %d", snap.Count, len(cases))
	}
	wantSum := 0.0
	for _, c := range cases {
		wantSum += c.v
	}
	if math.Abs(snap.Sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", snap.Sum, wantSum)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-ascending bounds")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Deterministic spread across all four buckets.
				h.Observe(float64((w*perWorker + i) % 200))
			}
		}(w)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", snap.Count, workers*perWorker)
	}
	var total int64
	for _, c := range snap.Counts {
		total += c
	}
	if total != workers*perWorker {
		t.Fatalf("bucket total = %d, want %d", total, workers*perWorker)
	}
	// Sum of (w*perWorker+i) % 200 over all observations: each worker
	// covers perWorker/200 full cycles of 0..199.
	cycles := workers * perWorker / 200
	wantSum := float64(cycles) * (199.0 * 200.0 / 2.0)
	if math.Abs(snap.Sum-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum = %v, want %v", snap.Sum, wantSum)
	}
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", b, want)
		}
	}
	if len(LatencyBuckets) != 20 || LatencyBuckets[0] != 100e-6 {
		t.Fatalf("LatencyBuckets = %v", LatencyBuckets)
	}
}

func TestRegistryGetOrRegister(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "help", "tier", "mem")
	b := r.Counter("test_total", "help", "tier", "mem")
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := r.Counter("test_total", "help", "tier", "disk")
	if a == c {
		t.Fatal("different labels must return a distinct counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("test_total", "help")
}

func TestRegistryFuncReplacement(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("depth", "queue depth", func() float64 { return 1 })
	r.GaugeFunc("depth", "queue depth", func() float64 { return 2 })
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "depth 2") {
		t.Fatalf("re-registered func sampler not used:\n%s", buf.String())
	}
}

func TestWritePrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("queries_total", "Total queries.", "algo", "bippr").Add(3)
	r.Counter("queries_total", "Total queries.", "algo", "pprtarget").Add(1)
	r.Gauge("queue_depth", "Tasks waiting.").Set(2)
	h := r.Histogram("latency_seconds", "Query latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	// A second registry merging into the same exposition.
	r2 := NewRegistry()
	r2.Counter("other_total", "Other.").Inc()

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r, r2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP queries_total Total queries.",
		"# TYPE queries_total counter",
		`queries_total{algo="bippr"} 3`,
		`queries_total{algo="pprtarget"} 1`,
		"# TYPE queue_depth gauge",
		"queue_depth 2",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_sum 5.55",
		"latency_seconds_count 3",
		"other_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	names, err := CheckExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("CheckExposition rejected our own output: %v\n%s", err, out)
	}
	wantNames := []string{"latency_seconds", "other_total", "queries_total", "queue_depth"}
	if len(names) != len(wantNames) {
		t.Fatalf("names = %v, want %v", names, wantNames)
	}
	for i := range wantNames {
		if names[i] != wantNames[i] {
			t.Fatalf("names = %v, want %v", names, wantNames)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", "path", `a"b\c`).Inc()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	if _, err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("escaped labels rejected: %v\n%s", err, buf.String())
	}
}

func TestCheckExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE":        "orphan_metric 1\n",
		"bad name":       "# TYPE 9bad counter\n9bad 1\n",
		"bad value":      "# TYPE m counter\nm abc\n",
		"bad type":       "# TYPE m flavor\n",
		"dup series":     "# TYPE m counter\nm 1\nm 2\n",
		"dup TYPE":       "# TYPE m counter\n# TYPE m counter\n",
		"unquoted label": "# TYPE m counter\nm{a=b} 1\n",
		"bad label name": "# TYPE m counter\nm{9a=\"b\"} 1\n",
	}
	for name, in := range cases {
		if _, err := CheckExposition([]byte(in)); err == nil {
			t.Errorf("%s: accepted malformed input %q", name, in)
		}
	}
}

func TestHandlerServesContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
}

func TestAttachSharesMetric(t *testing.T) {
	r := NewRegistry()
	c := NewCounter()
	r.AttachCounter("shared_total", "", c)
	c.Add(7)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "shared_total 7") {
		t.Fatalf("attached counter not exported:\n%s", buf.String())
	}
}
