package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timed phase of a traced request. All methods are
// nil-safe: StartSpan on an untraced context returns a nil span, so
// instrumentation points never branch on "is tracing on".
type Span struct {
	name    string
	start   time.Time
	end     time.Time
	mu      sync.Mutex // guards metrics, children, end
	metrics map[string]float64
	childs  []*Span
}

// SetMetric attaches a named scalar to the span (push counts,
// residual mass at stop, walks folded — whatever explains the
// phase's duration).
func (s *Span) SetMetric(name string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.metrics == nil {
		s.metrics = make(map[string]float64)
	}
	s.metrics[name] = v
	s.mu.Unlock()
}

// AddMetric accumulates into a named scalar — for phases that observe
// the same quantity several times (per-chunk walk counts).
func (s *Span) AddMetric(name string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.metrics == nil {
		s.metrics = make(map[string]float64)
	}
	s.metrics[name] += v
	s.mu.Unlock()
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// child creates and attaches a started sub-span.
func (s *Span) child(name string) *Span {
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.childs = append(s.childs, c)
	s.mu.Unlock()
	return c
}

// SpanNode is the exported form of a finished span tree — what a
// Result's phases field and the -trace CLI flag render.
type SpanNode struct {
	Name       string             `json:"name"`
	DurationMS float64            `json:"duration_ms"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	Children   []SpanNode         `json:"children,omitempty"`
}

// node snapshots the span (and its subtree). An unfinished span is
// measured up to now.
func (s *Span) node() SpanNode {
	s.mu.Lock()
	end := s.end
	if end.IsZero() {
		end = time.Now()
	}
	n := SpanNode{
		Name:       s.name,
		DurationMS: float64(end.Sub(s.start)) / float64(time.Millisecond),
	}
	if len(s.metrics) > 0 {
		n.Metrics = make(map[string]float64, len(s.metrics))
		for k, v := range s.metrics {
			n.Metrics[k] = v
		}
	}
	childs := make([]*Span, len(s.childs))
	copy(childs, s.childs)
	s.mu.Unlock()
	for _, c := range childs {
		n.Children = append(n.Children, c.node())
	}
	return n
}

// Node snapshots this span's subtree as an exportable node — how a
// batch executor captures one subquery's phases while the enclosing
// trace keeps the full tree. Nil-safe: a nil span yields a zero node.
func (s *Span) Node() SpanNode {
	if s == nil {
		return SpanNode{}
	}
	return s.node()
}

// Trace is a per-request span collector: the root of one request's
// span tree. Opening a trace on a context is the sampling decision —
// requests without one pay a single context lookup per StartSpan and
// record nothing.
type Trace struct {
	root *Span
}

// traceKey is the context key carrying the *current span* of a trace.
type traceKey struct{}

// NewTrace opens a trace rooted at name and returns a derived context
// that StartSpan calls below will attach to.
func NewTrace(ctx context.Context, name string) (context.Context, *Trace) {
	t := &Trace{root: &Span{name: name, start: time.Now()}}
	return context.WithValue(ctx, traceKey{}, t.root), t
}

// StartSpan opens a phase span nested under the context's current
// span. The returned context carries the new span so deeper phases
// nest beneath it; on an untraced context it returns (ctx, nil) and
// the nil span's methods are no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(traceKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	c := parent.child(name)
	return context.WithValue(ctx, traceKey{}, c), c
}

// FromContext returns the context's current span (nil when untraced)
// — for attaching metrics to an enclosing phase without opening a new
// one.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(traceKey{}).(*Span)
	return s
}

// End closes the trace's root span.
func (t *Trace) End() {
	if t == nil {
		return
	}
	t.root.End()
}

// Tree snapshots the trace as an exportable node tree.
func (t *Trace) Tree() SpanNode {
	if t == nil {
		return SpanNode{}
	}
	return t.root.node()
}

// FormatTree renders a node tree as an indented text block — the
// cyclerank -trace output and the slow-query log's human-readable
// form.
func FormatTree(n SpanNode) string {
	var b strings.Builder
	formatNode(&b, n, 0)
	return b.String()
}

func formatNode(b *strings.Builder, n SpanNode, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%s %.3fms", n.Name, n.DurationMS)
	if len(n.Metrics) > 0 {
		keys := make([]string, 0, len(n.Metrics))
		for k := range n.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("  [")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(b, "%s=%s", k, formatFloat(n.Metrics[k]))
		}
		b.WriteString("]")
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		formatNode(b, c, depth+1)
	}
}
