// Package obs is the platform's dependency-free observability
// subsystem: a metrics registry (counters, gauges, histograms with
// fixed exponential latency buckets) plus a lightweight span tracer
// that attaches nested per-phase timings to a request context.
//
// The package is the one sensor layer every serving component reports
// through, so an operator has exactly one place to look:
//
//   - Metric primitives (Counter, Gauge, Histogram) are plain structs
//     over atomics — allocation-free and lock-free on the hot path —
//     that exist independently of any registry. A component's stats
//     struct holds the metric itself; registering it only adds an
//     export name. There is therefore exactly one source of truth per
//     number: the JSON status rows and the Prometheus exposition read
//     the same atomic.
//
//   - A Registry maps Prometheus family names (plus fixed label sets)
//     to metrics and renders them in the text exposition format
//     (WritePrometheus). Default() is the process-wide registry that
//     package-level hot-path instrumentation (bippr's push and walk
//     counters) registers into; components with per-instance state
//     (caches, schedulers, stores) each own a private registry, and a
//     scrape endpoint merges any number of them into one exposition.
//
//   - Spans (StartSpan) record where a request's milliseconds went.
//     Tracing is sampled per request: StartSpan is a no-op returning a
//     nil (safe) span unless a trace was opened on the context with
//     NewTrace, so untraced hot paths pay one context lookup and
//     nothing else.
//
// Registration is get-or-register: asking twice for the same family
// name and label set returns the same metric, so package init order
// and repeated component construction cannot panic on duplicates.
// Kind or help mismatches on an existing series are programming
// errors and do panic.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. The zero value
// is ready to use.
type Counter struct{ v atomic.Int64 }

// NewCounter returns a standalone counter (register it with
// Registry.Counter to export it, or hold it directly).
func NewCounter() *Counter { return &Counter{} }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters are monotonic; callers must not pass negative
// deltas.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down. The zero value is
// ready to use.
type Gauge struct{ bits atomic.Uint64 }

// NewGauge returns a standalone gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (compare-and-swap loop; safe for concurrent use).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Kind is a metric family's Prometheus type.
type Kind string

// Metric family kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// metric is anything the registry can render: one of the concrete
// primitives or a read-at-scrape func.
type metric interface{ kind() Kind }

func (c *Counter) kind() Kind   { return KindCounter }
func (g *Gauge) kind() Kind     { return KindGauge }
func (h *Histogram) kind() Kind { return KindHistogram }

// funcMetric samples a value at scrape time — the bridge for numbers
// that live in an existing mutex-guarded structure (an LRU's entry
// count, a channel's depth) and would be racy or redundant to mirror
// into an atomic.
type funcMetric struct {
	k  Kind
	fn func() float64
}

func (f funcMetric) kind() Kind { return f.k }

// series is one exported time series: a metric plus its rendered
// label set.
type series struct {
	labels string // canonical `k="v",k2="v2"` form, possibly empty
	m      metric
}

// family groups the series of one metric name.
type family struct {
	name   string
	help   string
	k      Kind
	series []*series
}

// Registry maps metric family names to metrics and renders the
// Prometheus text exposition. It is safe for concurrent use; metric
// reads and writes never take the registry lock.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry package-level hot-path
// instrumentation registers into.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// validName matches the Prometheus metric and label name grammar.
var validName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// renderLabels canonicalizes alternating key/value pairs into the
// exposition form, sorted by key so the same logical label set always
// produces the same series identity. Invalid names and odd-length
// pairs panic: label sets are compile-time constants at call sites.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label pairs %q", pairs))
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		if !validName.MatchString(pairs[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", pairs[i]))
		}
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes quotes, backslashes and newlines Go-style, which
		// coincides with the exposition-format label escaping rules.
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	return b.String()
}

// register resolves (name, labels) to its metric, creating it with
// mk on first sight. A kind mismatch against an existing family
// panics — two call sites disagreeing on what a name means is a
// programming error that would corrupt the exposition.
func (r *Registry) register(name, help string, k Kind, labels []string, mk func() metric) metric {
	if !validName.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, k: k}
		r.families[name] = f
	} else if f.k != k {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, k, f.k))
	}
	for _, s := range f.series {
		if s.labels == ls {
			if _, isFunc := s.m.(funcMetric); isFunc {
				// Func metrics re-sample live state; a re-registration
				// (a component rebuilt in-process) replaces the stale
				// closure rather than freezing the first one forever.
				s.m = mk()
			}
			return s.m
		}
	}
	m := mk()
	f.series = append(f.series, &series{labels: ls, m: m})
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
	return m
}

// Counter returns the counter registered under name with the given
// alternating label key/value pairs, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.register(name, help, KindCounter, labels, func() metric { return NewCounter() }).(*Counter)
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.register(name, help, KindGauge, labels, func() metric { return NewGauge() }).(*Gauge)
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds on first use (nil selects
// LatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	return r.register(name, help, KindHistogram, labels, func() metric { return NewHistogram(bounds) }).(*Histogram)
}

// GaugeFunc registers a gauge whose value is sampled by fn at scrape
// time. Re-registering the same series replaces the sampler (the
// newest component instance wins).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, KindGauge, labels, func() metric { return funcMetric{KindGauge, fn} })
}

// CounterFunc registers a counter whose value is sampled by fn at
// scrape time — for monotonic numbers already maintained elsewhere.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, KindCounter, labels, func() metric { return funcMetric{KindCounter, fn} })
}

// AttachCounter exports an existing Counter under name — the
// registration path for a counter embedded in a component's stats
// structure, keeping that structure the single source of truth. If
// the series already exists the existing metric is kept.
func (r *Registry) AttachCounter(name, help string, c *Counter, labels ...string) {
	r.register(name, help, KindCounter, labels, func() metric { return c })
}

// AttachGauge exports an existing Gauge under name.
func (r *Registry) AttachGauge(name, help string, g *Gauge, labels ...string) {
	r.register(name, help, KindGauge, labels, func() metric { return g })
}

// AttachHistogram exports an existing Histogram under name.
func (r *Registry) AttachHistogram(name, help string, h *Histogram, labels ...string) {
	r.register(name, help, KindHistogram, labels, func() metric { return h })
}

// Handler returns an http.Handler serving this registry (plus any
// extra registries) in the Prometheus text exposition format — the
// GET /metrics endpoint.
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, regs...)
	})
}
