package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSpanNilSafety(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "phase")
	if s != nil {
		t.Fatal("untraced context must yield a nil span")
	}
	if ctx2 != ctx {
		t.Fatal("untraced StartSpan must return the context unchanged")
	}
	// All nil-span methods must be no-ops, not panics.
	s.SetMetric("x", 1)
	s.AddMetric("x", 1)
	s.End()
	if FromContext(ctx) != nil {
		t.Fatal("FromContext on untraced context must be nil")
	}
	var tr *Trace
	tr.End()
}

func TestSpanNesting(t *testing.T) {
	ctx, tr := NewTrace(context.Background(), "query")
	ctx1, outer := StartSpan(ctx, "reverse_push")
	outer.SetMetric("pushes", 42)
	_, inner := StartSpan(ctx1, "load_index")
	inner.End()
	outer.End()
	_, sib := StartSpan(ctx, "walks")
	sib.AddMetric("walks", 100)
	sib.AddMetric("walks", 50)
	sib.End()
	tr.End()

	n := tr.Tree()
	if n.Name != "query" || len(n.Children) != 2 {
		t.Fatalf("tree = %+v", n)
	}
	if n.Children[0].Name != "reverse_push" || n.Children[0].Metrics["pushes"] != 42 {
		t.Fatalf("child 0 = %+v", n.Children[0])
	}
	if len(n.Children[0].Children) != 1 || n.Children[0].Children[0].Name != "load_index" {
		t.Fatalf("nesting lost: %+v", n.Children[0])
	}
	if n.Children[1].Name != "walks" || n.Children[1].Metrics["walks"] != 150 {
		t.Fatalf("child 1 = %+v", n.Children[1])
	}
	for _, c := range n.Children {
		if c.DurationMS < 0 {
			t.Fatalf("negative duration in %+v", c)
		}
	}
}

// spanSet flattens a tree into parent/child name pairs — the
// order-independent identity that must not depend on worker
// parallelism.
func spanSet(n SpanNode, parent string, out map[string]int) {
	out[parent+"/"+n.Name]++
	for _, c := range n.Children {
		spanSet(c, parent+"/"+n.Name, out)
	}
}

func TestSpanSetStableUnderParallelism(t *testing.T) {
	// Simulate the batch pool: N subquery spans opened concurrently
	// under one trace, each with the same nested phases. The span
	// *set* must be identical for any worker count.
	run := func(workers int) map[string]int {
		ctx, tr := NewTrace(context.Background(), "batch")
		const subqueries = 8
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i := 0; i < subqueries; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				sctx, sub := StartSpan(ctx, "subquery")
				_, push := StartSpan(sctx, "reverse_push")
				push.End()
				_, walk := StartSpan(sctx, "walks")
				walk.End()
				sub.End()
			}()
		}
		wg.Wait()
		tr.End()
		set := make(map[string]int)
		spanSet(tr.Tree(), "", set)
		return set
	}
	base := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if len(got) != len(base) {
			t.Fatalf("parallelism %d: span set %v != baseline %v", workers, got, base)
		}
		for k, v := range base {
			if got[k] != v {
				t.Fatalf("parallelism %d: span set %v != baseline %v", workers, got, base)
			}
		}
	}
}

func TestSpanNodeJSONShape(t *testing.T) {
	ctx, tr := NewTrace(context.Background(), "q")
	_, s := StartSpan(ctx, "phase")
	s.SetMetric("pushes", 3)
	s.End()
	tr.End()
	b, err := json.Marshal(tr.Tree())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name":"q"`, `"duration_ms"`, `"children"`, `"pushes":3`} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("JSON missing %q: %s", want, b)
		}
	}
}

func TestFormatTree(t *testing.T) {
	n := SpanNode{
		Name: "query", DurationMS: 10.5,
		Metrics:  map[string]float64{"pushes": 42},
		Children: []SpanNode{{Name: "walks", DurationMS: 4}},
	}
	out := FormatTree(n)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %q", lines)
	}
	if !strings.HasPrefix(lines[0], "query 10.500ms") || !strings.Contains(lines[0], "pushes=42") {
		t.Fatalf("root line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  walks") {
		t.Fatalf("child line not indented: %q", lines[1])
	}
}
