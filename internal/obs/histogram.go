package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// LatencyBuckets is the platform's fixed exponential latency bucket
// layout, in seconds: 100µs doubling up to ~52s (20 bounds, 21
// buckets with the implicit +Inf). One shared layout keeps every
// latency histogram comparable and lets dashboards aggregate across
// phases.
var LatencyBuckets = ExponentialBuckets(100e-6, 2, 20)

// ExponentialBuckets returns n bucket upper bounds starting at start
// and multiplying by factor. start must be positive and factor > 1.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: exponential buckets need start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Histogram counts observations in fixed buckets. Observe is
// lock-free and allocation-free: one binary search over the bounds,
// two atomic adds, and a CAS loop for the float sum — cheap enough
// for per-request hot paths.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending bucket
// upper bounds (nil or empty selects LatencyBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. Prometheus bucket semantics: a value
// lands in the first bucket whose upper bound is >= v (le =
// "less than or equal"); values above every bound land in +Inf.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0 — the one-liner
// for latency spans: defer h.ObserveSince(time.Now()).
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// HistogramSnapshot is a consistent-enough read of a histogram:
// per-bucket (non-cumulative) counts aligned with Bounds plus the
// +Inf bucket last, total count and sum. Concurrent observers may
// make Count lag or lead the bucket total by in-flight observations;
// exposition readers tolerate that (Prometheus scrapes are not
// atomic either), and the rendered _count is derived from the bucket
// total so the cumulative series is always self-consistent.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Snapshot returns the current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }
