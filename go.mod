module github.com/cyclerank/cyclerank-go

go 1.24
