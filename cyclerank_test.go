package cyclerank_test

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	cyclerank "github.com/cyclerank/cyclerank-go"
)

// TestFacadeEndToEnd exercises the full public API surface the README
// advertises: build, persist, reload, rank, compare.
func TestFacadeEndToEnd(t *testing.T) {
	ctx := context.Background()

	b := cyclerank.NewLabeledBuilder()
	mutual := func(x, y string) {
		b.AddLabeledEdge(x, y)
		b.AddLabeledEdge(y, x)
	}
	mutual("a", "b")
	mutual("b", "c")
	mutual("c", "a")
	b.AddLabeledEdge("a", "hub")
	b.AddLabeledEdge("b", "hub")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	if got := cyclerank.ComputeStats(g); got.Nodes != 4 {
		t.Errorf("stats nodes = %d", got.Nodes)
	}

	// File round-trip through the façade.
	path := filepath.Join(t.TempDir(), "g.net")
	if err := cyclerank.WriteGraphFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := cyclerank.ReadGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Errorf("round trip edges %d != %d", g2.NumEdges(), g.NumEdges())
	}

	ref, ok := g.NodeByLabel("a")
	if !ok {
		t.Fatal("label lookup failed")
	}
	cr, err := cyclerank.Compute(ctx, g, ref, cyclerank.Params{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	hub, _ := g.NodeByLabel("hub")
	if cr.Score(hub) != 0 {
		t.Error("facade CycleRank scored the hub")
	}

	ppr, err := cyclerank.PersonalizedPageRank(ctx, g, cyclerank.PageRankParams{
		Alpha: 0.85, Seeds: []cyclerank.NodeID{ref},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ppr.Score(hub) == 0 {
		t.Error("facade PPR did not leak to the hub")
	}

	if _, err := cyclerank.CountCycles(ctx, g, ref, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := cyclerank.ScoringByName(cyclerank.ScoringLinear); err != nil {
		t.Fatal(err)
	}
	if _, err := cyclerank.PageRank(ctx, g, cyclerank.PageRankParams{Alpha: 0.85}); err != nil {
		t.Fatal(err)
	}
	if _, err := cyclerank.CheiRank(ctx, g, cyclerank.PageRankParams{Alpha: 0.85}); err != nil {
		t.Fatal(err)
	}
	if _, err := cyclerank.TwoDRank(ctx, g, cyclerank.PageRankParams{Alpha: 0.85}); err != nil {
		t.Fatal(err)
	}

	ag, err := cyclerank.CompareAt(cr, ppr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ag.Jaccard < 0 || ag.Jaccard > 1 {
		t.Errorf("agreement out of bounds: %+v", ag)
	}
	if j := cyclerank.JaccardAtK(cr, ppr, 3); j < 0 || j > 1 {
		t.Errorf("jaccard out of bounds: %v", j)
	}
	if _, err := cyclerank.RBO(cr, ppr, 3, 0.9); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeWeightsAndDiff(t *testing.T) {
	ctx := context.Background()
	g, ws, err := cyclerank.ReadGraphWeighted(strings.NewReader("a,b,9\nb,a,1\na,c,1\nc,a,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.NodeByLabel("a")
	bNode, _ := g.NodeByLabel("b")
	cNode, _ := g.NodeByLabel("c")
	res, err := cyclerank.WeightedPageRank(ctx, ws, cyclerank.PageRankParams{
		Alpha: 0.85, Seeds: []cyclerank.NodeID{a},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score(bNode) <= res.Score(cNode) {
		t.Errorf("heavy edge not favored: %v vs %v", res.Score(bNode), res.Score(cNode))
	}

	// Diff against the unweighted ranking.
	plain, err := cyclerank.PersonalizedPageRank(ctx, g, cyclerank.PageRankParams{
		Alpha: 0.85, Seeds: []cyclerank.NodeID{a},
	})
	if err != nil {
		t.Fatal(err)
	}
	diff, err := cyclerank.DiffTopK(plain, res, 3)
	if err != nil {
		t.Fatal(err)
	}
	if diff.K != 3 {
		t.Errorf("diff K = %d", diff.K)
	}

	// Weight mutation through the façade.
	if err := ws.Set(a, cNode, 100); err != nil {
		t.Fatal(err)
	}
	if w, _ := ws.Get(a, cNode); w != 100 {
		t.Errorf("weight = %v", w)
	}
	fresh := cyclerank.NewWeights(g)
	if w, _ := fresh.Get(a, bNode); w != 1 {
		t.Errorf("fresh weight = %v", w)
	}
}

func TestFacadeSubgraphsAndCycles(t *testing.T) {
	ctx := context.Background()
	b := cyclerank.NewLabeledBuilder()
	b.AddLabeledEdge("x", "y")
	b.AddLabeledEdge("y", "x")
	b.AddLabeledEdge("y", "z")
	b.AddLabeledEdge("z", "y")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	x, _ := g.NodeByLabel("x")
	z, _ := g.NodeByLabel("z")

	ego, origOf, err := cyclerank.EgoNet(g, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ego.NumNodes() != 2 || origOf[0] != x {
		t.Errorf("ego N=%d origOf=%v", ego.NumNodes(), origOf)
	}
	sub, _, err := cyclerank.InducedSubgraph(g, []cyclerank.NodeID{x, z})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumEdges() != 0 { // x and z are not directly connected
		t.Errorf("sub M=%d", sub.NumEdges())
	}

	par, err := cyclerank.ComputeParallel(ctx, g, x, cyclerank.Params{K: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := cyclerank.Compute(ctx, g, x, cyclerank.Params{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.CyclesFound != seq.CyclesFound {
		t.Errorf("parallel %d cycles vs sequential %d", par.CyclesFound, seq.CyclesFound)
	}

	multi, err := cyclerank.ComputeMulti(ctx, g, []cyclerank.NodeID{x, z}, cyclerank.Params{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if multi.CyclesFound != 2 {
		t.Errorf("multi cycles = %d", multi.CyclesFound)
	}

	cycles, total, err := cyclerank.ListCycles(ctx, g, x, cyclerank.Params{K: 4}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 || len(cycles) == 0 {
		t.Error("no cycles listed")
	}
	y, _ := g.NodeByLabel("y")
	through, err := cyclerank.CyclesThrough(ctx, g, x, y, cyclerank.Params{K: 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(through) == 0 {
		t.Error("no cycles through y")
	}
	// x and z share no *elementary* cycle (any closed walk would
	// revisit y), exactly the distinction CycleRank draws.
	none, err := cyclerank.CyclesThrough(ctx, g, x, z, cyclerank.Params{K: 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("unexpected cycles through z: %v", none)
	}
}

func TestFacadeRegistryAndCatalog(t *testing.T) {
	reg := cyclerank.NewRegistry()
	if len(reg.Names()) < 7 {
		t.Errorf("registry has %d algorithms", len(reg.Names()))
	}
	catalog, err := cyclerank.LoadCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if catalog.Len() != 50 {
		t.Errorf("catalog has %d datasets", catalog.Len())
	}
	ds, err := catalog.Get("enwiki-2013")
	if err != nil {
		t.Fatal(err)
	}
	g, err := ds.Load()
	if err != nil {
		t.Fatal(err)
	}
	res, err := cyclerank.RunAlgorithm(context.Background(), reg, cyclerank.AlgoCycleRank, g,
		cyclerank.AlgoParams{Source: "Freddie Mercury", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Top(5)) == 0 {
		t.Error("no results from catalog dataset")
	}
}

func TestFacadePlatform(t *testing.T) {
	store, err := cyclerank.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := cyclerank.LoadCatalog()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := cyclerank.NewServer(cyclerank.ServerConfig{
		Registry: cyclerank.NewRegistry(),
		Catalog:  catalog,
		Store:    store,
		Workers:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched := srv.Scheduler()
	qs, _, err := sched.Submit([]cyclerank.TaskSpec{{
		Dataset:   "enwiki-2003",
		Algorithm: cyclerank.AlgoCycleRank,
		Params:    cyclerank.AlgoParams{Source: "Freddie Mercury", K: 3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30_000_000_000)
	defer cancel()
	tasks, err := sched.WaitQuerySet(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if tasks[0].State != "done" {
		t.Errorf("task state %s: %s", tasks[0].State, tasks[0].Error)
	}
	if err := sched.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
